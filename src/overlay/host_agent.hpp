// The WAVNet driver's control half on a desktop host (paper §II.B):
//   * STUN-probes its NAT, registers with a rendezvous server, heartbeats,
//   * issues resource queries,
//   * establishes direct host-to-host connections via UDP hole punching
//     (Figure 3 step 4),
//   * keeps every punched NAT binding alive with the 2-byte CONNECT_PULSE,
//   * and runs the traversal ladder (Ford et al. §4): when hole punching
//     cannot succeed — the STUN-detected NAT pair is known-incompatible,
//     or the punch deadline passes — it falls back to a TURN-style
//     relayed tunnel through a relay server advertised by the rendezvous
//     layer, and later upgrades the relayed link back to direct when an
//     opportunistic re-punch proves the path, draining in-flight relayed
//     frames without loss or reordering (flush handshake).
//
// The same hole-punched socket carries the data plane: the WAV-Switch
// (wavnet module) registers a frame handler here and sends Ethernet
// frames to peers through send_frame(), so tunneled traffic flows over
// exactly the NAT bindings the punching created.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "overlay/messages.hpp"
#include "stack/udp.hpp"
#include "stun/stun.hpp"

namespace wav::overlay {

class HostAgent {
 public:
  struct Config {
    HostId host_id{0};  // 0 = derive from the host's IP
    std::string name;
    std::vector<double> attributes{0.5, 0.5};
    net::Endpoint rendezvous{};
    /// Backup rendezvous servers: when the active one stops answering
    /// liveness probes, the agent re-registers with the next (paper §II:
    /// a host "could join ... at least one rendezvous server").
    std::vector<net::Endpoint> rendezvous_backups{};
    /// Sharded registration fleet: when non-empty this supersedes
    /// `rendezvous`/`rendezvous_backups`. The agent hash-homes to
    /// shards[h(host_id) % N] and fails over around the ring (successor
    /// order), so a dead shard's population spreads across the survivors
    /// deterministically.
    std::vector<net::Endpoint> rendezvous_shards{};
    std::uint32_t rendezvous_probe_failures{3};  // probes before failover
    /// STUN primary/alternate endpoints; unset skips type detection and
    /// assumes a port-restricted cone (the common case).
    std::optional<std::pair<net::Endpoint, net::Endpoint>> stun{};
    /// Declared NAT type: skips the STUN probe and asserts the type
    /// directly. Churn populations sample measured NAT mixes and declare
    /// them; the traversal policy (punch-vs-relay) still applies.
    std::optional<nat::NatType> nat_type{};
    /// Metric instance label override. Large fleets set one shared label
    /// so 10k agents aggregate into a handful of counters instead of
    /// exploding the registry (and the export) per host.
    std::string metrics_instance{};
    std::uint16_t port{7777};
    Duration heartbeat_interval{seconds(15)};
    Duration pulse_interval{seconds(5)};   // paper §III.B uses 5 s
    Duration punch_interval{milliseconds(300)};
    Duration punch_timeout{seconds(8)};
    Duration link_idle_timeout{seconds(30)};
    /// When an established link idles out (peer crash, NAT reboot), try
    /// to re-broker and re-punch it through the rendezvous layer.
    bool auto_repunch{true};
    Duration repunch_delay{seconds(2)};
    /// Repeated repunch attempts back off exponentially up to this cap,
    /// so links lost to long partitions keep retrying until the WAN heals.
    Duration repunch_backoff_max{seconds(30)};
    /// After this many consecutive terminal connect failures to one peer
    /// the agent presumes it permanently departed and prunes its per-peer
    /// state (backoff map, pending request ids) instead of retrying
    /// forever. 0 = never give up (the pre-churn behavior).
    std::uint32_t repunch_give_up{0};
    /// Registration retries back off exponentially from this base up to
    /// the cap (jittered), so a crashed shard's whole population doesn't
    /// hammer the survivor in lockstep.
    Duration register_retry{seconds(2)};
    Duration register_retry_max{seconds(30)};
    /// A query unanswered past the timeout is retried with backoff; after
    /// the retries run out its handler fires with an empty result.
    Duration query_timeout{seconds(2)};
    std::uint32_t query_retries{2};
    /// Statically configured relay servers; the set advertised by the
    /// rendezvous layer in RegisterAck is merged in at registration.
    /// Empty = no relay tier: incompatible pairs fail as before.
    std::vector<net::Endpoint> relays{};
    /// An unanswered RelayAllocate is resent this many times before the
    /// agent rotates to the next relay in the list.
    Duration relay_alloc_timeout{seconds(2)};
    std::uint32_t relay_alloc_retries{2};
    /// Established relayed links re-allocate (refresh) on this cadence;
    /// missing this many refresh acks in a row means the relay died and
    /// the link fails over to the next relay (both sides advance their
    /// cursor in sync, so they meet on the same survivor).
    Duration relay_refresh_interval{seconds(5)};
    std::uint32_t relay_max_missed_refreshes{3};
    /// Relayed links between punch-compatible NAT pairs periodically
    /// re-punch for this window, upgrading to direct on success.
    Duration upgrade_probe_interval{seconds(15)};
    Duration upgrade_punch_window{seconds(3)};
    /// The upgrade flush handshake aborts (stays relayed) when the peer
    /// doesn't confirm the relay pipe drained within this timeout.
    Duration upgrade_flush_timeout{seconds(5)};
  };

  /// How an established link currently carries frames.
  enum class LinkKind : std::uint8_t { kDirect, kRelayed };

  using RegisteredHandler = std::function<void(bool ok)>;
  using QueryHandler = std::function<void(std::vector<HostInfo>)>;
  using ConnectHandler = std::function<void(bool ok, HostId peer)>;
  using FrameHandler = std::function<void(HostId from, const net::EncapFrame&)>;
  using LinkHandler = std::function<void(HostId peer)>;
  using GroupCtrlHandler = std::function<void(HostId from, const net::Chunk&)>;

  HostAgent(stack::IpLayer& ip, Config config);
  ~HostAgent();

  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  /// Runs STUN (if configured) then registers with the rendezvous server.
  void start(RegisteredHandler on_registered = {});

  /// Churn lifecycle: takes the host offline. Graceful departure sends a
  /// Deregister first; a crash just goes silent (peers idle the links
  /// out, the server expires the registration). Either way every link,
  /// pending query and per-peer retry record is torn down, all timers
  /// stop, and the agent ignores traffic until go_online().
  void go_offline(bool graceful);
  /// Returns after a departure: re-homes to the original (hash-home)
  /// rendezvous and registers from scratch.
  void go_online(RegisteredHandler on_registered = {});
  [[nodiscard]] bool offline() const noexcept { return down_; }

  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] const HostInfo& self_info() const noexcept { return self_; }
  [[nodiscard]] HostId id() const noexcept { return self_.host_id; }

  /// Resource discovery through the rendezvous layer.
  void query(const std::vector<double>& target, std::size_t k, QueryHandler handler);

  /// Establishes a direct connection to `peer` (from a query result).
  /// Punching starts immediately and the rendezvous layer is asked to
  /// notify the peer so it punches back.
  void connect_to(const HostInfo& peer, ConnectHandler handler = {});

  [[nodiscard]] bool link_established(HostId peer) const;
  [[nodiscard]] std::vector<HostId> connected_peers() const;
  [[nodiscard]] std::optional<net::Endpoint> link_remote(HostId peer) const;
  /// kDirect or kRelayed for an established link, nullopt otherwise.
  [[nodiscard]] std::optional<LinkKind> link_kind(HostId peer) const;
  /// The relay endpoint an established relayed link rides through.
  [[nodiscard]] std::optional<net::Endpoint> link_relay(HostId peer) const;
  [[nodiscard]] std::vector<HostId> relayed_peers() const;
  /// Extra encap bytes the current egress path to `peer` adds (the relay
  /// header for relayed links, 0 for direct) — the WAV-Switch folds this
  /// into its per-frame billing so both ends account consistently.
  [[nodiscard]] std::uint32_t relay_overhead(HostId peer) const;
  /// The relay set currently known (config + rendezvous-advertised).
  [[nodiscard]] const std::vector<net::Endpoint>& relays() const noexcept {
    return relays_;
  }

  /// Sends a tunneled Ethernet frame to an established peer. Returns
  /// false when no live link exists.
  bool send_frame(HostId peer, net::EncapFrame frame);

  void on_frame(FrameHandler handler) { on_frame_ = std::move(handler); }
  void on_link_up(LinkHandler handler) { on_link_up_ = std::move(handler); }
  void on_link_down(LinkHandler handler) { on_link_down_ = std::move(handler); }

  /// Second observer pair for the group membership layer (the WavSwitch
  /// owns the primary on_link_up/down slots). Fired right after them.
  void on_link_up_group(LinkHandler handler) { on_link_up_group_ = std::move(handler); }
  void on_link_down_group(LinkHandler handler) {
    on_link_down_group_ = std::move(handler);
  }

  /// Sends a group control chunk (kGroupHandshake) over the established
  /// tunnel to `peer` — direct links to the punched endpoint, relayed
  /// links via the relay's pair channel. Returns false without a link.
  bool send_group_ctrl(HostId peer, net::Chunk chunk);
  /// Receives kGroupHandshake chunks arriving on the tunnel socket.
  void on_group_datagram(GroupCtrlHandler handler) {
    on_group_ctrl_ = std::move(handler);
  }

  /// Closes a link locally (peer will idle it out).
  void drop_link(HostId peer);

  struct Stats {
    std::uint64_t punches_sent{0};
    std::uint64_t punch_acks_sent{0};
    std::uint64_t pulses_sent{0};
    std::uint64_t frames_sent{0};
    std::uint64_t frames_received{0};
    std::uint64_t links_established{0};
    std::uint64_t links_lost{0};
    std::uint64_t queries_timed_out{0};
    std::uint64_t query_retries_sent{0};
    std::uint64_t reregistrations{0};  // server lost our record; registered anew
    std::uint64_t connects_failed{0};  // every traversal rung exhausted
    std::uint64_t peers_forgotten{0};  // per-peer state pruned after give-up
    std::uint64_t relay_fallbacks{0};  // punching gave up; relay tier entered
    std::uint64_t relay_failovers{0};  // live relayed link moved to a new relay
    std::uint64_t relay_upgrades{0};   // relayed link switched to direct
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The raw socket (tests use it to inspect the local port).
  [[nodiscard]] const stack::UdpSocket& socket() const noexcept { return socket_; }
  /// The agent's UDP layer: co-resident services (the group membership
  /// agent) bind their own control ports here, sharing the host's stack.
  [[nodiscard]] stack::UdpLayer& udp() noexcept { return udp_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return ip_.sim(); }
  /// The rendezvous server currently in use (changes on failover).
  [[nodiscard]] net::Endpoint active_rendezvous() const noexcept {
    return active_rendezvous_;
  }
  [[nodiscard]] std::uint32_t rendezvous_failovers() const noexcept {
    return rendezvous_failovers_;
  }
  /// Non-probe queries still awaiting a reply or their deadline — must
  /// drain to zero once the overlay quiesces (leak detector).
  [[nodiscard]] std::size_t pending_query_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [qid, q] : pending_queries_) {
      if (!q.probe) ++n;
    }
    return n;
  }
  /// Non-probe pending queries older than `age` — the retry ladder bounds
  /// a legitimate entry's lifetime to ~(query_retries+1) x query_timeout,
  /// so anything past that is a leaked handler rather than in-flight work.
  [[nodiscard]] std::size_t stale_query_count(Duration age) const;
  /// Per-peer retry records currently held (backoff + failure counts).
  /// Under churn this must stay bounded — a growing value is the leak the
  /// peers_forgotten pruning exists to prevent.
  [[nodiscard]] std::size_t repunch_state_size() const noexcept {
    return repunch_backoff_.size() + repunch_failures_.size();
  }

 private:
  struct Link {
    HostId peer{0};
    HostInfo info;
    net::Endpoint remote{};  // proven working endpoint once established
    bool established{false};
    TimePoint last_rx{};
    TimePoint punch_started{};  // span anchor for punch success/timeout
    std::uint64_t nonce{0};
    std::vector<net::Endpoint> candidates;
    std::unique_ptr<sim::PeriodicTimer> punch_timer;
    TimePoint punch_deadline{};
    ConnectHandler on_result;
    std::uint64_t request_id{0};  // brokered connect id (ConnectFail lookup)

    // --- relay-ladder state ---
    LinkKind kind{LinkKind::kDirect};
    bool relay_tried{false};   // ladder reached the relay rung
    bool relay_bound{false};   // our side currently bound at link.relay
    bool relay_acked{false};   // the current relay answered our last allocate
    bool probing{false};       // upgrade re-punch window open
    bool upgrading{false};     // flush handshake in flight
    net::Endpoint relay{};     // relay the channel lives on (relays_[cursor])
    net::Endpoint direct_candidate{};  // punch-proven endpoint for upgrade
    std::size_t relay_cursor{0};
    std::uint32_t relay_attempts{0};   // allocates sent to the current relay
    std::size_t relays_cycled{0};      // relays tried this ladder round
    std::uint32_t missed_refreshes{0};
    std::uint32_t peer_wait_rounds{0};  // relay alive but peer not bound yet
    std::uint64_t alloc_epoch{0};       // retires stale allocate deadlines
    std::uint64_t flush_nonce{0};
    TimePoint relay_started{};  // span anchor for relay allocation latency
    // Frames held back while the flush handshake runs; drained in order
    // on the direct path (upgrade) or back through the relay (abort).
    std::vector<net::EncapFrame> upgrade_buffer;
  };

  struct PendingQuery {
    QueryHandler handler;
    std::vector<double> target;
    std::uint16_t k{0};
    std::uint32_t attempts{0};
    bool probe{false};  // liveness probes never retry and never call back
    sim::EventId deadline{};
    TimePoint issued{};
  };

  void on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void expire_query(std::uint64_t query_id);
  /// Applies a ±10% seeded jitter so periodic timers across many agents
  /// don't stay phase-locked (thundering herds of pulses/punches).
  [[nodiscard]] Duration jittered(Duration d);
  void schedule_repunch(const HostInfo& info);
  void do_register();
  void probe_rendezvous();
  void fail_over_rendezvous();
  void begin_punching(const HostInfo& peer, ConnectHandler handler);
  void punch_round(HostId peer);
  void establish(Link& link, const net::Endpoint& proven);
  void pulse_links();
  void reap_idle_links();
  Link* link_by_endpoint(const net::Endpoint& ep);
  /// Terminal traversal failure: every rung exhausted. Erases the link,
  /// fires the handler(false), counts per-reason, schedules a repunch.
  void fail_link(HostId peer, const std::string& reason);
  // --- relay ladder ---
  void begin_relay(Link& link, const char* reason);
  void send_relay_allocate(Link& link);
  void relay_alloc_expired(HostId peer, std::uint64_t epoch);
  /// Retries the current relay up to relay_alloc_retries, then rotates
  /// the cursor; a full cycle without success ends the ladder.
  void advance_relay(Link& link);
  void establish_relayed(Link& link);
  void relay_failover(Link& link);
  void refresh_relayed_links();
  // --- relayed -> direct upgrade ---
  void probe_upgrades();
  void start_upgrade_probe(Link& link);
  void start_switchover(Link& link, const net::Endpoint& proven);
  void complete_upgrade(Link& link);
  void flush_expired(HostId peer, std::uint64_t nonce);

  stack::IpLayer& ip_;
  Config config_;
  stack::UdpLayer udp_;
  stack::UdpSocket socket_;
  std::optional<stun::StunClient> stun_client_;

  HostInfo self_;
  bool registered_{false};
  bool down_{false};  // offline between churn sessions; ignores all I/O
  RegisteredHandler on_registered_;
  net::Endpoint active_rendezvous_{};
  net::Endpoint home_rendezvous_{};  // hash-home shard; go_online resets here
  Duration register_backoff_{};      // 0 = next retry uses register_retry
  std::size_t next_backup_{0};
  std::uint64_t last_probe_query_id_{0};
  std::uint32_t silent_probes_{0};
  std::uint32_t rendezvous_failovers_{0};
  // Re-home latency bookkeeping: the clock runs from the last positive
  // signal off the old shard (ack or probe reply) to the RegisterAck on
  // the new one, so the measured window includes the silence-detection
  // probes, the ring walk, and the registration backoff.
  TimePoint last_rendezvous_ok_{};
  bool rehoming_{false};

  std::uint64_t next_query_id_{1};
  std::unordered_map<std::uint64_t, PendingQuery> pending_queries_;
  std::uint64_t next_request_id_;
  std::unordered_map<HostId, Duration> repunch_backoff_;
  std::unordered_map<HostId, std::uint32_t> repunch_failures_;
  std::unordered_map<std::uint64_t, HostId> request_to_peer_;

  std::unordered_map<HostId, Link> links_;
  // Direct remotes only: a relay endpoint fans out to many peers, so
  // relayed links are attributed by EncapFrame.overlay_src instead.
  std::unordered_map<net::Endpoint, HostId> endpoint_to_peer_;
  std::vector<net::Endpoint> relays_;

  sim::PeriodicTimer heartbeat_timer_;
  sim::PeriodicTimer pulse_timer_;
  sim::PeriodicTimer idle_check_timer_;
  sim::PeriodicTimer relay_refresh_timer_;
  sim::PeriodicTimer upgrade_probe_timer_;

  FrameHandler on_frame_;
  LinkHandler on_link_up_;
  LinkHandler on_link_down_;
  LinkHandler on_link_up_group_;
  LinkHandler on_link_down_group_;
  GroupCtrlHandler on_group_ctrl_;
  Stats stats_;

  // Cached registry handles (resolved once in the constructor; the frame
  // and pulse paths only pay a pointer dereference).
  obs::Counter* c_punches_sent_{nullptr};
  obs::Counter* c_punch_acks_sent_{nullptr};
  obs::Counter* c_pulses_sent_{nullptr};
  obs::Counter* c_pulses_received_{nullptr};
  obs::Counter* c_frames_sent_{nullptr};
  obs::Counter* c_frames_received_{nullptr};
  obs::Counter* c_links_established_{nullptr};
  obs::Counter* c_links_lost_{nullptr};
  obs::Counter* c_punch_timeouts_{nullptr};
  obs::Counter* c_heartbeats_sent_{nullptr};
  obs::Counter* c_queries_timed_out_{nullptr};
  obs::Counter* c_reregistrations_{nullptr};
  obs::Counter* c_connects_failed_{nullptr};
  obs::Counter* c_failed_timeout_{nullptr};
  obs::Counter* c_failed_incompatible_{nullptr};
  obs::Counter* c_failed_relay_{nullptr};
  obs::Counter* c_failed_broker_{nullptr};
  obs::Counter* c_peers_forgotten_{nullptr};
  obs::Counter* c_traversal_direct_{nullptr};   // links that came up direct
  obs::Counter* c_traversal_relayed_{nullptr};  // links that came up relayed
  obs::Counter* c_relay_fallbacks_{nullptr};
  obs::Counter* c_relay_failovers_{nullptr};
  obs::Counter* c_relay_upgrades_{nullptr};
  obs::Counter* c_relay_upgrade_aborts_{nullptr};
  obs::Gauge* g_links_active_{nullptr};   // established links right now
  obs::Gauge* g_links_relayed_{nullptr};  // subset currently riding a relay
  obs::Histogram* h_punch_latency_ms_{nullptr};
  obs::Histogram* h_relay_alloc_ms_{nullptr};
  obs::Histogram* h_rehome_ms_{nullptr};
};

}  // namespace wav::overlay
