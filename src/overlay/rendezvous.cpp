#include "overlay/rendezvous.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::overlay {

RendezvousServer::RendezvousServer(stack::IpLayer& ip)
    : RendezvousServer(ip, Config{}) {}

RendezvousServer::RendezvousServer(stack::IpLayer& ip, Config config)
    : ip_(ip),
      config_(config),
      udp_(ip),
      host_socket_(udp_, config.host_port),
      can_socket_(udp_, config.can_port),
      can_(
          ip.sim(), ip.ip_address().value /* unique per server */,
          net::Endpoint{ip.ip_address(), config.can_port},
          [this](const net::Endpoint& to, net::Chunk msg) {
            can_socket_.send_to(to, std::move(msg));
          },
          can::CanNode::Config{config.can_dims, seconds(10), milliseconds(800), 1}),
      expiry_timer_(ip.sim(), seconds(30), [this] { expire_stale_hosts(); }),
      shard_ping_timer_(ip.sim(), config.shard_ping_interval,
                        [this] { shard_ping_tick(); }) {
  host_socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_host_datagram(from, d);
  });
  can_socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    if (down_) return;
    if (const auto* chunk = d.chunk()) can_.on_message(from, *chunk);
  });
  obs::MetricsRegistry& reg = ip_.sim().metrics();
  const std::string instance = ip_.ip_address().to_string();
  c_registrations_ = &reg.counter("rendezvous.registrations", instance);
  c_heartbeats_ = &reg.counter("rendezvous.heartbeats", instance);
  c_queries_ = &reg.counter("rendezvous.queries", instance);
  c_connects_brokered_ = &reg.counter("rendezvous.connects_brokered", instance);
  c_connects_failed_ = &reg.counter("rendezvous.connects_failed", instance);
  c_hosts_expired_ = &reg.counter("rendezvous.hosts_expired", instance);
  c_shard_pings_ = &reg.counter("rendezvous.shard_pings", instance);
  g_registered_hosts_ = &reg.gauge("rendezvous.registered_hosts", instance);
  g_shards_alive_ = &reg.gauge("rendezvous.shards_alive", instance);
  expiry_timer_.start();
  if (!config_.shard_peers.empty()) set_shard_peers(config_.shard_peers);
}

void RendezvousServer::set_shard_peers(std::vector<net::Endpoint> peers) {
  config_.shard_peers = std::move(peers);
  shard_state_.clear();
  for (const auto& peer : config_.shard_peers) shard_state_[peer];
  shard_ping_timer_.stop();
  if (!config_.shard_peers.empty() && !down_) shard_ping_timer_.start();
  sync_shard_gauge();
}

std::size_t RendezvousServer::alive_shards() const {
  const TimePoint now = ip_.sim().now();
  const Duration window = 3 * config_.shard_ping_interval;
  std::size_t alive = down_ ? 0 : 1;
  for (const auto& [peer, state] : shard_state_) {
    if (state.ever_seen && now - state.last_seen <= window) ++alive;
  }
  return alive;
}

std::size_t RendezvousServer::fleet_registered_hosts() const {
  const TimePoint now = ip_.sim().now();
  const Duration window = 3 * config_.shard_ping_interval;
  std::size_t total = down_ ? 0 : hosts_.size();
  for (const auto& [peer, state] : shard_state_) {
    if (state.ever_seen && now - state.last_seen <= window) {
      total += state.reported_hosts;
    }
  }
  return total;
}

void RendezvousServer::shard_ping_tick() {
  if (down_) return;
  ShardPingMsg ping;
  ping.from = host_endpoint();
  ping.registered_hosts = static_cast<std::uint32_t>(hosts_.size());
  if (shard_payload_provider_) ping.payload = shard_payload_provider_();
  for (const auto& peer : config_.shard_peers) {
    c_shard_pings_->inc();
    host_socket_.send_to(peer, encode(ping));
    // Cross-hello the peer's CAN node too (fleet convention: one shared
    // can_port). After a false-positive liveness takeover two shards can
    // hold overlapping zone claims with no neighbor-table path between
    // them; this out-of-band hello is what lets the CAN layer notice and
    // resolve the conflict (see CanNode::announce_to).
    can_.announce_to({peer.ip, config_.can_port});
  }
  sync_shard_gauge();
}

void RendezvousServer::sync_shard_gauge() {
  g_shards_alive_->set(static_cast<double>(alive_shards()));
}

void RendezvousServer::sync_host_gauge() {
  g_registered_hosts_->set(static_cast<double>(hosts_.size()));
}

void RendezvousServer::bootstrap() { can_.bootstrap(); }

void RendezvousServer::join(const net::Endpoint& seed_can_endpoint) {
  can_.join(seed_can_endpoint);
}

void RendezvousServer::crash() {
  if (down_) return;
  down_ = true;
  hosts_.clear();
  sync_host_gauge();
  pending_connects_.clear();
  expiry_buckets_.clear();
  expiry_timer_.stop();
  shard_ping_timer_.stop();
  for (auto& [peer, state] : shard_state_) state = ShardPeer{};
  sync_shard_gauge();
  can_.crash();
  ip_.sim().tracer().instant(obs::Category::kChaos, "rendezvous.crash",
                             ip_.ip_address().to_string());
}

void RendezvousServer::restart() {
  if (!down_) return;
  down_ = false;
  expiry_timer_.start();
  if (!config_.shard_peers.empty()) shard_ping_timer_.start();
  can_.restart();
  can_.bootstrap();
  ip_.sim().tracer().instant(obs::Category::kChaos, "rendezvous.restart",
                             ip_.ip_address().to_string());
}

void RendezvousServer::restart(const net::Endpoint& seed_can_endpoint) {
  if (!down_) return;
  down_ = false;
  expiry_timer_.start();
  if (!config_.shard_peers.empty()) shard_ping_timer_.start();
  can_.restart();
  can_.join(seed_can_endpoint);
  ip_.sim().tracer().instant(obs::Category::kChaos, "rendezvous.restart",
                             ip_.ip_address().to_string());
}

can::Point RendezvousServer::attrs_to_point(const std::vector<double>& attrs) const {
  can::Point p;
  p.coords.resize(config_.can_dims, 0.5);
  for (std::size_t i = 0; i < config_.can_dims && i < attrs.size(); ++i) {
    p.coords[i] = std::clamp(attrs[i], 0.0, 0.999999);
  }
  return p;
}

void RendezvousServer::on_host_datagram(const net::Endpoint& from,
                                        const net::UdpDatagram& dgram) {
  if (down_) return;  // crashed process: the port is deaf
  WAV_PROF_SCOPE("rendezvous", "datagram");
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto type = peek_type(dgram);
  if (!type) return;

  switch (*type) {
    case MsgType::kRegister: {
      if (const auto msg = parse_register(*chunk)) handle_register(from, *msg);
      return;
    }
    case MsgType::kDeregister: {
      if (const auto msg = parse_deregister(*chunk)) {
        const auto it = hosts_.find(msg->host_id);
        if (it != hosts_.end()) {
          can_.erase(attrs_to_point(it->second.info.attributes), [&] {
            ByteBuffer buf;
            ByteWriter w{buf};
            encode_host_info(w, it->second.info);
            return buf;
          }());
          hosts_.erase(it);
          sync_host_gauge();
        }
      }
      return;
    }
    case MsgType::kHeartbeat: {
      if (const auto msg = parse_heartbeat(*chunk)) {
        ++stats_.heartbeats;
        c_heartbeats_->inc();
        const auto it = hosts_.find(msg->host_id);
        if (it != hosts_.end()) {
          it->second.last_seen = ip_.sim().now();
          it->second.observed = from;  // NAT rebinding keeps working
          note_alive(msg->host_id, it->second.last_seen);
          // Refresh the CAN record's TTL (erase the old copy first so
          // re-stores do not pile up duplicates).
          ByteBuffer blob;
          ByteWriter w{blob};
          encode_host_info(w, it->second.info);
          can_.erase(attrs_to_point(it->second.info.attributes), blob);
          can_.store(attrs_to_point(it->second.info.attributes), std::move(blob),
                     config_.host_expiry);
        } else {
          // A heartbeat from a host we don't know means our tables were
          // wiped (crash/restart) after it registered. Telling it so —
          // a negative ack — makes it re-register instead of heartbeating
          // into the void until its tunnels rot.
          RegisterAckMsg nack;
          nack.ok = false;
          nack.observed = from;
          host_socket_.send_to(from, encode(nack));
        }
      }
      return;
    }
    case MsgType::kQuery: {
      if (const auto msg = parse_query(*chunk)) handle_query(from, *msg);
      return;
    }
    case MsgType::kConnectRequest: {
      if (const auto msg = parse_connect_request(*chunk)) {
        handle_connect_request(from, *msg);
      }
      return;
    }
    case MsgType::kRvForwardNotify: {
      if (const auto msg = parse_rv_forward(*chunk)) handle_rv_forward(from, *msg);
      return;
    }
    case MsgType::kConnectNotify: {
      // A peer server answered our forwarded connect: relay to the local
      // requester host recorded under this request id.
      if (const auto msg = parse_connect_notify(*chunk)) {
        const auto it = pending_connects_.find(msg->request_id);
        if (it != pending_connects_.end()) {
          host_socket_.send_to(it->second.requester_observed, encode(*msg));
          pending_connects_.erase(it);
          ++stats_.connects_brokered;
          c_connects_brokered_->inc();
        }
      }
      return;
    }
    case MsgType::kConnectFail: {
      if (const auto msg = parse_connect_fail(*chunk)) {
        const auto it = pending_connects_.find(msg->request_id);
        if (it != pending_connects_.end()) {
          host_socket_.send_to(it->second.requester_observed, encode(*msg));
          pending_connects_.erase(it);
          ++stats_.connects_failed;
          c_connects_failed_->inc();
        }
      }
      return;
    }
    case MsgType::kShardPing: {
      if (const auto msg = parse_shard_ping(*chunk)) {
        if (const auto it = shard_state_.find(msg->from); it != shard_state_.end()) {
          it->second.last_seen = ip_.sim().now();
          it->second.reported_hosts = msg->registered_hosts;
          it->second.ever_seen = true;
        }
        if (shard_payload_handler_ && !msg->payload.empty()) {
          shard_payload_handler_(msg->payload);
        }
        ShardPongMsg pong;
        pong.from = host_endpoint();
        pong.registered_hosts = static_cast<std::uint32_t>(hosts_.size());
        if (shard_payload_provider_) pong.payload = shard_payload_provider_();
        host_socket_.send_to(msg->from, encode(pong));
      }
      return;
    }
    case MsgType::kShardPong: {
      if (const auto msg = parse_shard_pong(*chunk)) {
        if (const auto it = shard_state_.find(msg->from); it != shard_state_.end()) {
          it->second.last_seen = ip_.sim().now();
          it->second.reported_hosts = msg->registered_hosts;
          it->second.ever_seen = true;
          sync_shard_gauge();
        }
        if (shard_payload_handler_ && !msg->payload.empty()) {
          shard_payload_handler_(msg->payload);
        }
      }
      return;
    }
    default:
      log::debug("rendezvous", "unexpected message type {}",
                 static_cast<int>(*type));
      return;
  }
}

void RendezvousServer::handle_register(const net::Endpoint& from, const RegisterMsg& msg) {
  WAV_PROF_SCOPE("rendezvous", "register");
  ++stats_.registrations;
  c_registrations_->inc();
  ip_.sim().tracer().instant(obs::Category::kOverlay, "rendezvous.register",
                             ip_.ip_address().to_string(),
                             "\"host\":" + std::to_string(msg.info.host_id));
  // Re-registration: drop the stale CAN record first.
  if (const auto it = hosts_.find(msg.info.host_id); it != hosts_.end()) {
    ByteBuffer old;
    ByteWriter ow{old};
    encode_host_info(ow, it->second.info);
    can_.erase(attrs_to_point(it->second.info.attributes), std::move(old));
  }
  Registered reg;
  reg.info = msg.info;
  // The source endpoint we observe *is* the host's NAT mapping for its
  // overlay socket — the coordinate peers will hole-punch toward.
  reg.info.public_endpoint = from;
  reg.info.rendezvous = host_endpoint();
  reg.observed = from;
  reg.last_seen = ip_.sim().now();

  // Index the host in the CAN by its resource-state point, bounded by a
  // TTL so records don't outlive a crashed host (or a rendezvous server
  // that died before cleaning up) — heartbeats refresh it below.
  ByteBuffer blob;
  ByteWriter w{blob};
  encode_host_info(w, reg.info);
  can_.store(attrs_to_point(reg.info.attributes), std::move(blob), config_.host_expiry);

  const TimePoint seen = reg.last_seen;
  hosts_[msg.info.host_id] = std::move(reg);
  note_alive(msg.info.host_id, seen);
  sync_host_gauge();

  RegisterAckMsg ack;
  ack.ok = true;
  ack.observed = from;
  ack.relays = config_.relays;
  host_socket_.send_to(from, encode(ack));
}

void RendezvousServer::handle_query(const net::Endpoint& from, const QueryMsg& msg) {
  WAV_PROF_SCOPE("rendezvous", "query");
  ++stats_.queries;
  c_queries_->inc();
  const can::Point target = attrs_to_point(msg.target);
  const std::uint64_t query_id = msg.query_id;
  const std::uint16_t k = msg.k;
  can_.query(target, k, [this, from, query_id, k](std::vector<can::Item> items) {
    QueryReplyMsg reply;
    reply.query_id = query_id;
    for (const auto& item : items) {
      ByteReader r{item.payload};
      if (const auto info = parse_host_info(r)) {
        // Registrations can be refreshed; keep only the first (closest)
        // record per host id.
        const bool dup = std::any_of(
            reply.hosts.begin(), reply.hosts.end(),
            [&](const HostInfo& h) { return h.host_id == info->host_id; });
        if (!dup) reply.hosts.push_back(*info);
      }
    }
    if (reply.hosts.size() > k) reply.hosts.resize(k);
    host_socket_.send_to(from, encode(reply));
  });
}

void RendezvousServer::handle_connect_request(const net::Endpoint& from,
                                              const ConnectRequestMsg& msg) {
  // Figure 3, step 2: this (requester-side) server records the pending
  // request and asks the peer's rendezvous server to notify both ends.
  PendingConnect pending;
  pending.requester_observed = from;
  pending.created = ip_.sim().now();
  pending_connects_[msg.request_id] = pending;

  RvForwardNotifyMsg fwd;
  fwd.request_id = msg.request_id;
  fwd.requester = msg.requester;
  fwd.requester.public_endpoint = from;  // authoritative mapping
  fwd.requester.rendezvous = host_endpoint();
  fwd.target = msg.target;

  if (msg.target_rendezvous == host_endpoint()) {
    handle_rv_forward(host_endpoint(), fwd);
  } else {
    host_socket_.send_to(msg.target_rendezvous, encode(fwd));
  }
}

void RendezvousServer::handle_rv_forward(const net::Endpoint& from,
                                         const RvForwardNotifyMsg& msg) {
  const auto it = hosts_.find(msg.target);
  const auto reply_to = [&](net::Chunk chunk) {
    if (from == host_endpoint()) {
      // Local shortcut: requester registered at this very server.
      const auto pending = pending_connects_.find(msg.request_id);
      if (pending != pending_connects_.end()) {
        host_socket_.send_to(pending->second.requester_observed, std::move(chunk));
        pending_connects_.erase(pending);
      }
    } else {
      host_socket_.send_to(from, std::move(chunk));
    }
  };

  if (it == hosts_.end()) {
    ++stats_.connects_failed;
    c_connects_failed_->inc();
    reply_to(encode(ConnectFailMsg{msg.request_id, "unknown host"}));
    return;
  }

  // Figure 3, step 3: tell the target who wants in...
  ConnectNotifyMsg to_target;
  to_target.request_id = msg.request_id;
  to_target.peer = msg.requester;
  host_socket_.send_to(it->second.observed, encode(to_target));

  // ...and hand the target's fresh info back toward the requester.
  ConnectNotifyMsg to_requester;
  to_requester.request_id = msg.request_id;
  to_requester.peer = it->second.info;
  ++stats_.connects_brokered;
  c_connects_brokered_->inc();
  reply_to(encode(to_requester));
}

// Bucket width for the expiry wheel. Must divide the expiry tick period
// (30 s) so that sweeps land exactly on bucket boundaries — which makes
// the wheel expire precisely the hosts the old full-table scan would
// have, just without visiting the fresh ones.
namespace {
constexpr std::uint64_t kExpiryBucketNs = 10'000'000'000ULL;  // 10 s
}  // namespace

void RendezvousServer::note_alive(HostId id, TimePoint last_seen) {
  const auto deadline =
      static_cast<std::uint64_t>((last_seen + config_.host_expiry).since_start.count());
  expiry_buckets_[deadline / kExpiryBucketNs].push_back(id);
}

void RendezvousServer::expire_stale_hosts() {
  WAV_PROF_SCOPE("rendezvous", "expire");
  const TimePoint now = ip_.sim().now();
  // Sweep only buckets whose whole deadline range lies in the past. A
  // host refreshed since its entry was queued fails the staleness check
  // and is skipped — its live entry sits in a later bucket.
  const auto now_bucket =
      static_cast<std::uint64_t>(now.since_start.count()) / kExpiryBucketNs;
  while (!expiry_buckets_.empty()) {
    const auto bucket = expiry_buckets_.begin();
    if (bucket->first >= now_bucket) break;
    for (const HostId id : bucket->second) {
      const auto it = hosts_.find(id);
      if (it == hosts_.end()) continue;  // departed or already expired
      if (now - it->second.last_seen <= config_.host_expiry) continue;  // refreshed
      ByteBuffer blob;
      ByteWriter w{blob};
      encode_host_info(w, it->second.info);
      can_.erase(attrs_to_point(it->second.info.attributes), std::move(blob));
      c_hosts_expired_->inc();
      hosts_.erase(it);
    }
    expiry_buckets_.erase(bucket);
  }
  sync_host_gauge();
  // Connect requests that never completed fail loudly: the requester
  // gets a ConnectFail so its punch attempt can give up, and the failure
  // shows up in stats instead of vanishing in a silent GC.
  for (auto it = pending_connects_.begin(); it != pending_connects_.end();) {
    if (now - it->second.created > config_.connect_timeout) {
      ++stats_.connects_failed;
      c_connects_failed_->inc();
      host_socket_.send_to(it->second.requester_observed,
                           encode(ConnectFailMsg{it->first, "timeout"}));
      it = pending_connects_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wav::overlay
