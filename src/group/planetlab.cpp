#include "group/planetlab.hpp"

#include <algorithm>
#include <cmath>

namespace wav::group {

LatencyMatrix synthesize_planetlab(const PlanetLabConfig& config, std::uint64_t seed) {
  Rng rng{seed};
  const std::size_t n = config.hosts;
  LatencyMatrix matrix{n};

  // Place clusters on a 2-D "continent map"; inter-cluster base latency
  // follows Euclidean distance, which automatically satisfies the
  // triangle inequality (the transitivity assumption, Formula (3)).
  struct ClusterPos {
    double x{0};
    double y{0};
  };
  std::vector<ClusterPos> clusters(config.clusters);
  for (auto& c : clusters) {
    c.x = rng.uniform();
    c.y = rng.uniform();
  }
  const double diag = std::sqrt(2.0);

  std::vector<std::size_t> host_cluster(n);
  std::vector<bool> overloaded(n);
  for (std::size_t i = 0; i < n; ++i) {
    host_cluster[i] = static_cast<std::size_t>(rng.uniform_u64(0, config.clusters - 1));
    overloaded[i] = rng.chance(config.overloaded_host_fraction);
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double base;
      if (host_cluster[i] == host_cluster[j]) {
        base = rng.uniform(config.intra_cluster_min_ms, config.intra_cluster_max_ms);
      } else {
        const auto& a = clusters[host_cluster[i]];
        const auto& b = clusters[host_cluster[j]];
        const double dist =
            std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y)) / diag;
        base = config.inter_cluster_min_ms +
               dist * (config.inter_cluster_max_ms - config.inter_cluster_min_ms);
      }
      double latency =
          base * (1.0 + rng.normal(0.0, config.jitter_fraction));
      latency = std::max(config.intra_cluster_min_ms, latency);

      // Heavy tail: any pair touching an overloaded host pays its queue.
      if (overloaded[i] || overloaded[j]) {
        latency += std::min(config.outlier_cap_ms,
                            rng.pareto(config.outlier_scale_ms, config.outlier_shape));
        latency = std::min(latency, config.outlier_cap_ms);
      }
      matrix.set(i, j, latency);
    }
  }
  return matrix;
}

double transitivity_violation_rate(const LatencyMatrix& m, double slack_factor, Rng& rng,
                                   std::size_t samples) {
  const std::size_t n = m.size();
  if (n < 3 || samples == 0) return 0.0;
  std::size_t violations = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto i = static_cast<std::size_t>(rng.uniform_u64(0, n - 1));
    auto j = static_cast<std::size_t>(rng.uniform_u64(0, n - 1));
    auto k = static_cast<std::size_t>(rng.uniform_u64(0, n - 1));
    if (i == j || j == k || i == k) {
      --s;  // resample distinct triples
      continue;
    }
    if (m.at(i, k) > slack_factor * (m.at(i, j) + m.at(j, k))) ++violations;
  }
  return static_cast<double>(violations) / static_cast<double>(samples);
}

}  // namespace wav::group
