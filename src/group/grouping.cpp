#include "group/grouping.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace wav::group {

LatencyMatrix::LatencyMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

void LatencyMatrix::set(std::size_t i, std::size_t j, double latency_ms) noexcept {
  data_[i * n_ + j] = latency_ms;
  data_[j * n_ + i] = latency_ms;
}

std::vector<double> LatencyMatrix::pair_latencies() const {
  std::vector<double> out;
  out.reserve(n_ * (n_ - 1) / 2);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) out.push_back(at(i, j));
  }
  return out;
}

GroupResult evaluate_group(const LatencyMatrix& m, std::vector<std::size_t> members) {
  GroupResult result;
  double sum = 0.0;
  double max = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      const double lat = m.at(members[a], members[b]);
      sum += lat;
      max = std::max(max, lat);
      ++pairs;
    }
  }
  result.members = std::move(members);
  result.average_latency_ms = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  result.max_latency_ms = max;
  return result;
}

DistanceLocator::DistanceLocator(const LatencyMatrix& m) : matrix_(m) { refresh(); }

void DistanceLocator::refresh() {
  const std::size_t n = matrix_.size();
  sorted_rows_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    auto& row = sorted_rows_[i];
    row.resize(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = j;
    std::sort(row.begin(), row.end(), [&](std::size_t a, std::size_t b) {
      return matrix_.at(i, a) < matrix_.at(i, b);
    });
  }
}

std::optional<GroupResult> DistanceLocator::query(std::size_t k,
                                                  LocalityConfig config) const {
  const std::size_t n = matrix_.size();
  if (k < 2 || k > n) return std::nullopt;

  std::optional<GroupResult> best;
  for (std::size_t i = 0; i < n; ++i) {
    // The (k+1)-group: this host's k+1 nearest (the sorted row starts
    // with the host itself at distance 0, so take the first k+1 entries).
    const auto& row = sorted_rows_[i];
    const std::size_t take = std::min(n, k + 1);
    const std::vector<std::size_t> base(row.begin(),
                                        row.begin() + static_cast<std::ptrdiff_t>(take));
    if (base.size() < k) continue;

    // Leave-one-out candidates of size k (k+1 of them; or the single
    // full set when the row only yields exactly k hosts).
    const std::size_t variants = base.size() == k ? 1 : base.size();
    for (std::size_t skip = 0; skip < variants; ++skip) {
      std::vector<std::size_t> candidate;
      candidate.reserve(k);
      for (std::size_t idx = 0; idx < base.size(); ++idx) {
        if (base.size() > k && idx == skip) continue;
        candidate.push_back(base[idx]);
      }
      if (candidate.size() != k) continue;

      GroupResult result = evaluate_group(matrix_, std::move(candidate));
      // Filter candidates with an unreasonable/over-large connection.
      if (config.max_connection_ms > 0.0 &&
          result.max_latency_ms > config.max_connection_ms) {
        continue;
      }
      if (!best || result.average_latency_ms < best->average_latency_ms) {
        best = std::move(result);
      }
    }
  }
  return best;
}

std::optional<GroupResult> locality_group(const LatencyMatrix& m, std::size_t k,
                                          LocalityConfig config) {
  const DistanceLocator locator{m};
  return locator.query(k, config);
}

std::optional<GroupResult> brute_force_group(const LatencyMatrix& m, std::size_t k) {
  const std::size_t n = m.size();
  if (k < 2 || k > n) return std::nullopt;

  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;

  std::optional<GroupResult> best;
  for (;;) {
    GroupResult result = evaluate_group(m, indices);
    if (!best || result.average_latency_ms < best->average_latency_ms) {
      best = std::move(result);
    }
    // Next combination (lexicographic).
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (indices[pos] != pos + n - k) break;
      if (pos == 0) return best;
    }
    if (indices[pos] == pos + n - k) return best;
    ++indices[pos];
    for (std::size_t j = pos + 1; j < k; ++j) indices[j] = indices[j - 1] + 1;
  }
}

GroupResult random_group(const LatencyMatrix& m, std::size_t k, Rng& rng) {
  auto sample = rng.sample_indices(m.size(), k);
  return evaluate_group(m, std::move(sample));
}

}  // namespace wav::group
