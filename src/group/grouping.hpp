// Locality-sensitive host grouping (paper §II.D): given an N x N mutual
// latency matrix, pick k hosts minimizing mean pairwise latency
// (Formula (1)). Implements
//   * the paper's approximation: per row, take the k+1 nearest hosts and
//     evaluate the k+1 leave-one-out k-subsets, filtering any candidate
//     containing an over-large connection — O(N*k) candidate groups
//     (each scored in O(k^2));
//   * exact brute force (for validation at small N, and to measure the
//     approximation gap);
//   * random selection (the Figure 14 baseline).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace wav::group {

/// Symmetric matrix of mutual latencies in milliseconds.
class LatencyMatrix {
 public:
  explicit LatencyMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
    return data_[i * n_ + j];
  }
  /// Sets both (i,j) and (j,i) — the symmetry assumption of Formula (2).
  void set(std::size_t i, std::size_t j, double latency_ms) noexcept;

  /// All upper-triangle latencies (Figure 12's distribution plot).
  [[nodiscard]] std::vector<double> pair_latencies() const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

struct GroupResult {
  std::vector<std::size_t> members;  // host indices, size k (empty = no group)
  double average_latency_ms{0};
  double max_latency_ms{0};
};

/// Mean/max pairwise latency of a candidate group (Formula (1)).
[[nodiscard]] GroupResult evaluate_group(const LatencyMatrix& m,
                                         std::vector<std::size_t> members);

struct LocalityConfig {
  /// Candidates containing any pairwise latency above this are filtered
  /// ("unreasonable or over-large connection"). <=0 disables the filter.
  double max_connection_ms{1000.0};
};

/// The paper's O(N*k) approximation algorithm.
[[nodiscard]] std::optional<GroupResult> locality_group(const LatencyMatrix& m,
                                                        std::size_t k,
                                                        LocalityConfig config = {});

/// Exact optimum by exhaustive search; practical only for small C(N,k).
[[nodiscard]] std::optional<GroupResult> brute_force_group(const LatencyMatrix& m,
                                                           std::size_t k);

/// Uniform random k-subset (Figure 14's comparison baseline).
[[nodiscard]] GroupResult random_group(const LatencyMatrix& m, std::size_t k, Rng& rng);

/// Precomputed sorted rows, as maintained by the distance locator on each
/// rendezvous server ("each row is always sorted in increasing order").
/// Separating the maintenance (part 1) from the grouping query (part 2)
/// mirrors the paper's two-part algorithm; query() is the request-time
/// cost the paper analyses as O(N*k).
class DistanceLocator {
 public:
  explicit DistanceLocator(const LatencyMatrix& m);

  /// Re-sorts the rows after matrix updates.
  void refresh();

  /// The grouping query (part 2 of the paper's algorithm).
  [[nodiscard]] std::optional<GroupResult> query(std::size_t k,
                                                 LocalityConfig config = {}) const;

  [[nodiscard]] const std::vector<std::vector<std::size_t>>& sorted_rows() const noexcept {
    return sorted_rows_;
  }

 private:
  const LatencyMatrix& matrix_;
  std::vector<std::vector<std::size_t>> sorted_rows_;  // row i: hosts by distance from i
};

}  // namespace wav::group
