// Synthetic PlanetLab-like latency matrix (the substitution for the
// paper's §III.D measurement of 400 live PlanetLab hosts).
//
// The generator reproduces the structural properties Figure 12 shows and
// the grouping algorithm exploits:
//   * hosts clustered at geographic sites: small intra-cluster latencies
//     (sub-ms to a few ms, LAN/metro),
//   * inter-cluster latencies from a continental distance model
//     (tens to hundreds of ms),
//   * a heavy (Pareto) tail of pathological pairs reaching seconds
//     (overloaded PlanetLab nodes — Fig 12(a) shows outliers up to 10 s),
//   * approximate symmetry and triangle-inequality-like transitivity
//     (Formulas (2) and (3)).
#pragma once

#include "group/grouping.hpp"

namespace wav::group {

struct PlanetLabConfig {
  std::size_t hosts{400};
  std::size_t clusters{24};          // geographic sites
  double intra_cluster_min_ms{0.2};  // same-site floor
  double intra_cluster_max_ms{12.0};
  double inter_cluster_min_ms{15.0};
  double inter_cluster_max_ms{320.0};
  double jitter_fraction{0.08};      // per-pair noise around the base value
  double overloaded_host_fraction{0.04};  // hosts whose pairs go heavy-tailed
  double outlier_scale_ms{800.0};    // Pareto scale of the outlier tail
  double outlier_shape{1.2};
  double outlier_cap_ms{10000.0};    // Fig 12(a) caps at 10 s
};

/// Deterministically synthesizes the matrix from a seed.
[[nodiscard]] LatencyMatrix synthesize_planetlab(const PlanetLabConfig& config,
                                                 std::uint64_t seed);

/// Fraction of (i,j,k) triples violating latency transitivity by more
/// than `slack_factor` (diagnostics for the Formula (3) assumption).
[[nodiscard]] double transitivity_violation_rate(const LatencyMatrix& m,
                                                 double slack_factor, Rng& rng,
                                                 std::size_t samples = 20000);

}  // namespace wav::group
