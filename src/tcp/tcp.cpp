#include "tcp/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::tcp {

const char* to_string(TcpState s) noexcept {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

namespace {

/// Reconstructs an absolute stream offset from a 32-bit wire value, given
/// the connection's initial sequence number for that direction and a
/// nearby reference offset. Valid while windows stay far below 2^31,
/// which the config guarantees.
std::uint64_t unwrap(std::uint32_t wire, std::uint32_t isn, std::uint64_t near) {
  const auto expected_wire = static_cast<std::uint32_t>(isn + static_cast<std::uint32_t>(near));
  const auto delta = static_cast<std::int32_t>(wire - expected_wire);
  const auto result = static_cast<std::int64_t>(near) + delta;
  return result < 0 ? 0 : static_cast<std::uint64_t>(result);
}

constexpr std::uint32_t kMaxBackoff = 10;

}  // namespace

// --- TcpLayer ------------------------------------------------------------

std::size_t TcpLayer::ConnKeyHash::operator()(const ConnKey& k) const noexcept {
  std::uint64_t h = k.local.ip.value;
  h = h * 1000003ULL + k.local.port;
  h = h * 1000003ULL + k.remote.ip.value;
  h = h * 1000003ULL + k.remote.port;
  return std::hash<std::uint64_t>{}(h);
}

TcpLayer::TcpLayer(stack::IpLayer& ip, TcpConfig config) : ip_(ip), config_(config) {
  ip_.set_protocol_handler(net::kProtoTcp,
                           [this](const net::IpPacket& pkt) { handle_packet(pkt); });
}

TcpLayer::~TcpLayer() { ip_.set_protocol_handler(net::kProtoTcp, nullptr); }

void TcpLayer::listen(std::uint16_t port, AcceptHandler handler) {
  listen(port, std::move(handler), config_);
}

void TcpLayer::listen(std::uint16_t port, AcceptHandler handler, const TcpConfig& config) {
  if (listeners_.contains(port)) {
    throw std::runtime_error("TCP port already listening: " + std::to_string(port));
  }
  listeners_[port] = Listener{std::move(handler), config};
}

void TcpLayer::close_listener(std::uint16_t port) { listeners_.erase(port); }

TcpConnection::Ptr TcpLayer::connect(net::Endpoint remote) {
  return connect(remote, config_);
}

TcpConnection::Ptr TcpLayer::connect(net::Endpoint remote, const TcpConfig& config) {
  // Pick an unused ephemeral port for this (remote) pair.
  std::uint16_t port = 0;
  for (int attempts = 0; attempts < 32768; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? 32768 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (!connections_.contains(ConnKey{{ip_.ip_address(), candidate}, remote})) {
      port = candidate;
      break;
    }
  }
  if (port == 0) throw std::runtime_error("TCP ephemeral port space exhausted");

  const net::Endpoint local{ip_.ip_address(), port};
  auto conn = TcpConnection::Ptr(new TcpConnection(*this, local, remote, config));
  connections_[ConnKey{local, remote}] = conn;
  conn->start_connect();
  return conn;
}

void TcpLayer::handle_packet(const net::IpPacket& pkt) {
  WAV_PROF_SCOPE("tcp", "handle_packet");
  const auto* seg = pkt.tcp();
  if (seg == nullptr) return;
  const net::Endpoint local{pkt.dst, seg->dst_port};
  const net::Endpoint remote{pkt.src, seg->src_port};

  if (const auto it = connections_.find(ConnKey{local, remote}); it != connections_.end()) {
    // Keep the connection alive through the callback even if it closes.
    const TcpConnection::Ptr conn = it->second;
    conn->handle_segment(*seg);
    return;
  }

  if (seg->flags.syn && !seg->flags.ack) {
    if (const auto it = listeners_.find(local.port); it != listeners_.end()) {
      auto conn =
          TcpConnection::Ptr(new TcpConnection(*this, local, remote, it->second.config));
      connections_[ConnKey{local, remote}] = conn;
      conn->start_accept(seg->seq);
      return;
    }
  }
  if (!seg->flags.rst) send_rst_for(pkt);
}

void TcpLayer::send_rst_for(const net::IpPacket& pkt) {
  const auto* seg = pkt.tcp();
  net::TcpSegment rst;
  rst.flags.rst = true;
  rst.flags.ack = true;
  rst.seq = seg->ack;
  rst.ack = seg->seq + 1;
  emit(net::Endpoint{pkt.dst, seg->dst_port}, net::Endpoint{pkt.src, seg->src_port},
       std::move(rst));
}

void TcpLayer::remove_connection(const net::Endpoint& local, const net::Endpoint& remote) {
  connections_.erase(ConnKey{local, remote});
}

bool TcpLayer::emit(const net::Endpoint& from, const net::Endpoint& to,
                    net::TcpSegment seg) {
  seg.src_port = from.port;
  seg.dst_port = to.port;
  net::IpPacket pkt;
  pkt.src = from.ip;
  pkt.dst = to.ip;
  pkt.body = std::move(seg);
  return ip_.send_ip(std::move(pkt));
}

// --- TcpConnection: lifecycle --------------------------------------------

TcpConnection::TcpConnection(TcpLayer& layer, net::Endpoint local, net::Endpoint remote,
                             const TcpConfig& config)
    : layer_(layer),
      config_(config),
      local_(local),
      remote_(remote),
      rto_(config.initial_rto),
      rto_timer_(layer.sim(), [this] { on_rto(); },
                 WAV_PROF_CATEGORY("tcp", "rto_timer")),
      time_wait_timer_(layer.sim(), [this] { become_closed(CloseReason::kNormal); }) {
  cwnd_ = static_cast<std::uint64_t>(config_.mss) * config_.initial_cwnd_segments;
  ssthresh_ = UINT64_MAX;
  obs::MetricsRegistry& reg = layer_.sim().metrics();
  c_retransmits_ = &reg.counter("tcp.retransmits");
  c_fast_retransmits_ = &reg.counter("tcp.fast_retransmits");
  c_rto_events_ = &reg.counter("tcp.rto_events");
  h_rtt_ms_ = &reg.histogram(
      "tcp.rtt_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000});
}

TcpConnection::~TcpConnection() = default;

void TcpConnection::start_connect() {
  iss_ = layer_.next_iss_;
  layer_.next_iss_ += 64000 + static_cast<std::uint32_t>(layer_.sim().rng().uniform_u64(0, 4095));
  state_ = TcpState::kSynSent;
  net::TcpFlags syn;
  syn.syn = true;
  send_control(syn);
  arm_rto();
}

void TcpConnection::start_accept(std::uint32_t peer_iss) {
  irs_ = peer_iss;
  rcv_nxt_ = 1;  // SYN consumed offset 0
  iss_ = layer_.next_iss_;
  layer_.next_iss_ += 64000 + static_cast<std::uint32_t>(layer_.sim().rng().uniform_u64(0, 4095));
  state_ = TcpState::kSynReceived;
  net::TcpFlags synack;
  synack.syn = true;
  synack.ack = true;
  send_control(synack);
  arm_rto();
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      become_closed(CloseReason::kNormal);
      return;
    case TcpState::kEstablished:
    case TcpState::kSynReceived:
    case TcpState::kCloseWait:
      fin_queued_ = true;
      try_send();
      return;
    default:
      return;  // already closing or closed
  }
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  net::TcpFlags rst;
  rst.rst = true;
  rst.ack = true;
  send_control(rst);
  become_closed(CloseReason::kReset);
}

void TcpConnection::become_closed(CloseReason reason) {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  rto_timer_.cancel();
  time_wait_timer_.cancel();
  const auto self = shared_from_this();  // keep alive past map erasure
  layer_.remove_connection(local_, remote_);
  if (on_closed_) on_closed_(reason);
}

void TcpConnection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  rto_timer_.cancel();
  time_wait_timer_.arm(config_.time_wait);
}

// --- TcpConnection: sending ----------------------------------------------

std::uint64_t TcpConnection::send_buffer_space() const noexcept {
  const std::uint64_t used = send_store_.end() - (snd_una_data_ - 1);
  const std::uint64_t cap = config_.receive_buffer;  // symmetric buffer sizing
  return used >= cap ? 0 : cap - used;
}

void TcpConnection::send(net::Chunk data) {
  if (fin_queued_ || state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) {
    log::debug("tcp", "send() on closing/closed connection ignored");
    return;
  }
  stats_.bytes_sent += data.size();
  send_store_.append(std::move(data));
  try_send();
}

std::uint64_t TcpConnection::effective_window() const noexcept {
  return std::min(cwnd_, peer_window_);
}

std::uint32_t TcpConnection::wire_seq(std::uint64_t offset) const noexcept {
  return iss_ + static_cast<std::uint32_t>(offset);
}

std::uint64_t TcpConnection::unwrap_seq(std::uint32_t wire, std::uint64_t near) const noexcept {
  return unwrap(wire, irs_, near);
}

std::uint32_t TcpConnection::wire_ack() const noexcept {
  return irs_ + static_cast<std::uint32_t>(rcv_nxt_);
}

void TcpConnection::try_send() {
  WAV_PROF_SCOPE("tcp", "try_send");
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing &&
      state_ != TcpState::kLastAck) {
    return;
  }
  const std::uint64_t data_end = 1 + send_store_.end();
  const std::uint32_t mss = config_.mss;
  for (;;) {
    const std::uint64_t flight = snd_nxt_data_ - snd_una_data_;
    const std::uint64_t wnd = effective_window();
    if (flight >= wnd) break;
    const std::uint64_t avail = data_end - snd_nxt_data_;
    const std::uint64_t len = std::min<std::uint64_t>({mss, wnd - flight, avail});
    if (len == 0) break;
    send_segment(snd_nxt_data_, len, false);
    snd_nxt_data_ += len;
  }
  if (fin_queued_ && !fin_sent_ && snd_nxt_data_ == data_end) {
    fin_sent_ = true;
    net::TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    send_control(fin);
    if (state_ == TcpState::kEstablished || state_ == TcpState::kSynReceived) {
      state_ = TcpState::kFinWait1;
    } else if (state_ == TcpState::kCloseWait) {
      state_ = TcpState::kLastAck;
    }
    arm_rto();
  }
}

void TcpConnection::send_segment(std::uint64_t offset, std::uint64_t len,
                                 bool is_retransmit) {
  net::TcpSegment seg;
  seg.seq = wire_seq(offset);
  seg.ack = wire_ack();
  seg.flags.ack = true;
  seg.flags.psh = true;
  seg.window = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      config_.receive_buffer - reassembly_bytes_, UINT32_MAX));
  seg.data = send_store_.copy_range(offset - 1, len);

  ++stats_.segments_sent;
  if (is_retransmit) {
    ++stats_.retransmits;
    c_retransmits_->inc();
  } else if (!rtt_sample_) {
    rtt_sample_ = {offset + len, layer_.sim().now()};
  }
  layer_.emit(local_, remote_, std::move(seg));
  if (!rto_timer_.armed()) arm_rto();
}

void TcpConnection::send_control(net::TcpFlags flags) {
  net::TcpSegment seg;
  seg.flags = flags;
  if (flags.syn) {
    seg.seq = wire_seq(0);
  } else if (flags.fin) {
    seg.seq = wire_seq(1 + send_store_.end());
  } else {
    seg.seq = wire_seq(snd_nxt_data_);
  }
  if (flags.ack) seg.ack = wire_ack();
  seg.window = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      config_.receive_buffer - reassembly_bytes_, UINT32_MAX));
  ++stats_.segments_sent;
  layer_.emit(local_, remote_, std::move(seg));
}

void TcpConnection::send_ack() {
  net::TcpFlags ack;
  ack.ack = true;
  send_control(ack);
}

// --- TcpConnection: timers ------------------------------------------------

void TcpConnection::arm_rto() {
  Duration timeout = rto_;
  for (std::uint32_t i = 0; i < backoff_; ++i) timeout *= 2;
  timeout = std::min(timeout, config_.max_rto);
  rto_timer_.arm(timeout);
}

void TcpConnection::on_rto() {
  WAV_PROF_SCOPE("tcp", "rto");
  const auto& cfg = config_;
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    if (++syn_retries_ > cfg.max_syn_retries) {
      become_closed(CloseReason::kTimeout);
      return;
    }
    net::TcpFlags f;
    f.syn = true;
    f.ack = state_ == TcpState::kSynReceived;
    send_control(f);
    ++backoff_;
    arm_rto();
    return;
  }

  const bool data_outstanding = snd_nxt_data_ > snd_una_data_;
  const bool fin_outstanding = fin_sent_ && !fin_acked_;
  if (!data_outstanding && !fin_outstanding) return;

  if (++backoff_ > kMaxBackoff) {
    become_closed(CloseReason::kTimeout);
    return;
  }
  ++stats_.rto_events;
  c_rto_events_->inc();
  // Reno loss response to a timeout: collapse to one segment and
  // retransmit from the oldest unacknowledged byte (go-back-N).
  const std::uint64_t flight = snd_nxt_data_ - snd_una_data_;
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2ULL * cfg.mss);
  cwnd_ = cfg.mss;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  rtt_sample_.reset();  // Karn's rule

  if (data_outstanding) {
    snd_nxt_data_ = snd_una_data_;
    try_send();
  } else {
    net::TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    ++stats_.retransmits;
    c_retransmits_->inc();
    send_control(fin);
  }
  arm_rto();
}

void TcpConnection::update_rtt(Duration sample) {
  const auto& cfg = config_;
  if (srtt_ == kZeroDuration) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Duration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg.min_rto, cfg.max_rto);
  stats_.smoothed_rtt = srtt_;
  h_rtt_ms_->observe(to_milliseconds(sample));
}

// --- TcpConnection: receiving ----------------------------------------------

void TcpConnection::handle_segment(const net::TcpSegment& seg) {
  WAV_PROF_SCOPE("tcp", "handle_segment");
  ++stats_.segments_received;

  if (seg.flags.rst) {
    const CloseReason reason =
        state_ == TcpState::kSynSent ? CloseReason::kRefused : CloseReason::kReset;
    become_closed(reason);
    return;
  }

  // Handshake progress.
  if (state_ == TcpState::kSynSent) {
    if (seg.flags.syn && seg.flags.ack) {
      irs_ = seg.seq;
      rcv_nxt_ = 1;
      const std::uint64_t ack_abs = unwrap(seg.ack, iss_, 1);
      if (ack_abs != 1) {
        abort();
        return;
      }
      syn_acked_ = true;
      backoff_ = 0;
      rto_timer_.cancel();
      peer_window_ = seg.window;
      state_ = TcpState::kEstablished;
      send_ack();
      if (on_established_) on_established_();
      try_send();
    }
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    if (seg.flags.syn && !seg.flags.ack) {
      // Retransmitted SYN: repeat the SYN|ACK.
      net::TcpFlags synack;
      synack.syn = true;
      synack.ack = true;
      send_control(synack);
      return;
    }
    if (seg.flags.ack && unwrap(seg.ack, iss_, 1) >= 1) {
      syn_acked_ = true;
      backoff_ = 0;
      rto_timer_.cancel();
      peer_window_ = seg.window;
      state_ = TcpState::kEstablished;
      if (const auto it = layer_.listeners_.find(local_.port); it != layer_.listeners_.end()) {
        it->second.handler(shared_from_this());
      }
      if (on_established_) on_established_();
      // Fall through: the handshake ACK may carry data.
    } else {
      return;
    }
  }
  if (state_ == TcpState::kTimeWait) {
    if (seg.flags.fin) send_ack();  // peer retransmitted its FIN
    return;
  }
  if (state_ == TcpState::kClosed) return;

  if (seg.flags.syn && seg.flags.ack) {
    // Duplicate SYN|ACK (our handshake ACK was lost): re-ACK.
    send_ack();
    return;
  }

  if (seg.flags.ack) handle_ack(seg);
  if (state_ == TcpState::kClosed) return;
  if (!seg.data.empty() || seg.flags.fin) handle_payload(seg);
}

void TcpConnection::handle_ack(const net::TcpSegment& seg) {
  peer_window_ = seg.window;
  const std::uint64_t data_end = 1 + send_store_.end();
  const std::uint64_t max_sendable = data_end + (fin_sent_ ? 1 : 0);
  const std::uint64_t ack_abs = unwrap(seg.ack, iss_, snd_una_data_);
  if (ack_abs > max_sendable) return;  // acks data never sent; ignore

  const std::uint64_t snd_una_overall = snd_una_data_;
  if (ack_abs > snd_una_overall) {
    const std::uint64_t newly_acked_data =
        std::min(ack_abs, data_end) > snd_una_data_ ? std::min(ack_abs, data_end) - snd_una_data_
                                                    : 0;
    snd_una_data_ = std::max(snd_una_data_, std::min(ack_abs, data_end));
    if (snd_nxt_data_ < snd_una_data_) snd_nxt_data_ = snd_una_data_;
    send_store_.release_until(snd_una_data_ - 1);
    stats_.bytes_acked += newly_acked_data;
    if (fin_sent_ && ack_abs >= data_end + 1) fin_acked_ = true;

    if (rtt_sample_ && ack_abs >= rtt_sample_->first) {
      update_rtt(layer_.sim().now() - rtt_sample_->second);
      rtt_sample_.reset();
    }
    dupacks_ = 0;

    const auto mss = static_cast<std::uint64_t>(config_.mss);
    if (in_fast_recovery_) {
      if (ack_abs >= recovery_point_) {
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK: retransmit the next hole, deflate the window.
        const std::uint64_t hole =
            std::min<std::uint64_t>(mss, data_end - snd_una_data_);
        if (hole > 0) send_segment(snd_una_data_, hole, true);
        cwnd_ = cwnd_ > newly_acked_data ? cwnd_ - newly_acked_data + mss : mss;
      }
    } else if (newly_acked_data > 0) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min<std::uint64_t>(newly_acked_data, mss);  // slow start
      } else {
        cwnd_ += std::max<std::uint64_t>(1, mss * mss / cwnd_);  // congestion avoidance
      }
    }

    const bool everything_acked = snd_una_data_ == data_end && (!fin_sent_ || fin_acked_);
    if (everything_acked) {
      backoff_ = 0;
      rto_timer_.cancel();
    } else if (!in_fast_recovery_) {
      // Outside recovery a new ACK restarts the retransmission timer.
      // During recovery we deliberately leave the old timer running:
      // NewReno repairs only one hole per RTT, so when most of a window
      // was lost the RTO must eventually fire and fall back to go-back-N
      // instead of being postponed forever by partial ACKs.
      backoff_ = 0;
      arm_rto();
    }

    // Close-sequence state transitions driven by our FIN being acked.
    if (fin_acked_) {
      if (state_ == TcpState::kFinWait1) {
        state_ = TcpState::kFinWait2;
      } else if (state_ == TcpState::kClosing) {
        enter_time_wait();
      } else if (state_ == TcpState::kLastAck) {
        become_closed(CloseReason::kNormal);
        return;
      }
    }
    try_send();
    if (on_send_ready_ && send_buffer_space() > 0) on_send_ready_();
    return;
  }

  // Duplicate ACK handling (Reno fast retransmit / recovery).
  const bool is_dupack = ack_abs == snd_una_overall && seg.data.empty() &&
                         !seg.flags.fin && snd_nxt_data_ > snd_una_data_;
  if (!is_dupack) return;
  ++dupacks_;
  const auto mss = static_cast<std::uint64_t>(config_.mss);
  if (!in_fast_recovery_ && dupacks_ == config_.dupack_threshold) {
    const std::uint64_t flight = snd_nxt_data_ - snd_una_data_;
    ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * mss);
    in_fast_recovery_ = true;
    recovery_point_ = snd_nxt_data_;
    ++stats_.fast_retransmits;
    c_fast_retransmits_->inc();
    const std::uint64_t len =
        std::min<std::uint64_t>(mss, (1 + send_store_.end()) - snd_una_data_);
    if (len > 0) send_segment(snd_una_data_, len, true);
    cwnd_ = ssthresh_ + 3 * mss;
    rtt_sample_.reset();  // Karn's rule
  } else if (in_fast_recovery_) {
    cwnd_ += mss;  // window inflation per additional dupack
    try_send();
  }
}

void TcpConnection::handle_payload(const net::TcpSegment& seg) {
  const auto& cfg = config_;
  std::uint64_t off = unwrap_seq(seg.seq, rcv_nxt_);
  std::uint64_t len = seg.data.empty() ? 0 : total_size(seg.data);

  if (seg.flags.fin) {
    const std::uint64_t fin_off = off + len;
    if (!peer_fin_offset_) {
      peer_fin_offset_ = fin_off;
    }
  }

  if (len > 0) {
    if (off + len <= rcv_nxt_) {
      send_ack();  // complete duplicate
      return;
    }
    std::vector<net::Chunk> data = seg.data;
    if (off < rcv_nxt_) {
      // Trim the already-received prefix.
      std::uint64_t trim = rcv_nxt_ - off;
      std::vector<net::Chunk> trimmed;
      for (auto& c : data) {
        if (trim >= c.size()) {
          trim -= c.size();
          continue;
        }
        if (trim > 0) {
          (void)c.split_front(trim);
          trim = 0;
        }
        trimmed.push_back(std::move(c));
      }
      data = std::move(trimmed);
      off = rcv_nxt_;
      len = total_size(data);
    }
    const auto existing = reassembly_.find(off);
    const bool keep_existing =
        existing != reassembly_.end() && total_size(existing->second) >= len;
    if (!keep_existing && (reassembly_bytes_ + len <= cfg.receive_buffer || off == rcv_nxt_)) {
      if (existing != reassembly_.end()) {
        reassembly_bytes_ -= total_size(existing->second);
        reassembly_.erase(existing);
      }
      reassembly_bytes_ += len;
      reassembly_[off] = std::move(data);
    }
    // else: duplicate-or-shorter segment, or window overflow — drop.
    deliver_in_order();
  }

  // FIN consumption once all preceding data has been delivered.
  if (peer_fin_offset_ && *peer_fin_offset_ == rcv_nxt_ && !peer_fin_delivered_) {
    peer_fin_delivered_ = true;
    ++rcv_nxt_;
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait1) {
      state_ = fin_acked_ ? TcpState::kTimeWait : TcpState::kClosing;
      if (state_ == TcpState::kTimeWait) enter_time_wait();
    } else if (state_ == TcpState::kFinWait2) {
      enter_time_wait();
    }
    if (on_peer_closed_) on_peer_closed_();
  }
  send_ack();
}

void TcpConnection::deliver_in_order() {
  while (true) {
    const auto it = reassembly_.begin();
    if (it == reassembly_.end() || it->first > rcv_nxt_) break;
    std::vector<net::Chunk> data = std::move(it->second);
    std::uint64_t off = it->first;
    std::uint64_t len = total_size(data);
    reassembly_.erase(it);
    reassembly_bytes_ -= len;
    if (off + len <= rcv_nxt_) continue;  // fully stale overlap
    if (off < rcv_nxt_) {
      // Partial overlap with already-delivered bytes: trim the prefix.
      std::uint64_t trim = rcv_nxt_ - off;
      std::vector<net::Chunk> trimmed;
      for (auto& c : data) {
        if (trim >= c.size()) {
          trim -= c.size();
          continue;
        }
        if (trim > 0) {
          (void)c.split_front(trim);
          trim = 0;
        }
        trimmed.push_back(std::move(c));
      }
      data = std::move(trimmed);
      len = total_size(data);
    }
    rcv_nxt_ += len;
    stats_.bytes_received += len;
    if (on_data_) on_data_(data);
  }
}

}  // namespace wav::tcp
