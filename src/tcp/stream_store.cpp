#include "tcp/stream_store.hpp"

#include <algorithm>
#include <cassert>

namespace wav::tcp {
namespace {

/// Copies `len` bytes of `chunk` starting at byte `skip`.
net::Chunk slice(const net::Chunk& chunk, std::uint64_t skip, std::uint64_t len) {
  assert(skip + len <= chunk.size());
  net::Chunk out;
  if (skip < chunk.real.size()) {
    const auto take =
        static_cast<std::size_t>(std::min<std::uint64_t>(len, chunk.real.size() - skip));
    out.real.assign(chunk.real.begin() + static_cast<std::ptrdiff_t>(skip),
                    chunk.real.begin() + static_cast<std::ptrdiff_t>(skip + take));
    len -= take;
  }
  out.virtual_size = len;
  return out;
}

}  // namespace

void StreamStore::append(net::Chunk chunk) {
  if (chunk.empty()) return;
  const std::uint64_t sz = chunk.size();
  pieces_.push_back(Piece{end_, std::move(chunk)});
  end_ += sz;
}

void StreamStore::release_until(std::uint64_t offset) {
  offset = std::clamp(offset, base_, end_);
  while (!pieces_.empty()) {
    Piece& front = pieces_.front();
    const std::uint64_t piece_end = front.start + front.chunk.size();
    if (piece_end <= offset) {
      pieces_.pop_front();
    } else if (front.start < offset) {
      // Partial release: trim the front of the piece.
      const std::uint64_t trim = offset - front.start;
      front.chunk = slice(front.chunk, trim, front.chunk.size() - trim);
      front.start = offset;
      break;
    } else {
      break;
    }
  }
  base_ = offset;
}

std::vector<net::Chunk> StreamStore::copy_range(std::uint64_t offset,
                                                std::uint64_t len) const {
  assert(offset >= base_ && offset + len <= end_);
  std::vector<net::Chunk> out;
  if (len == 0) return out;

  // Binary search for the first piece containing `offset`.
  const auto it = std::partition_point(
      pieces_.begin(), pieces_.end(), [offset](const Piece& p) {
        return p.start + p.chunk.size() <= offset;
      });
  for (auto cur = it; cur != pieces_.end() && len > 0; ++cur) {
    const std::uint64_t skip = offset > cur->start ? offset - cur->start : 0;
    const std::uint64_t avail = cur->chunk.size() - skip;
    const std::uint64_t take = std::min(avail, len);
    out.push_back(slice(cur->chunk, skip, take));
    offset += take;
    len -= take;
  }
  assert(len == 0);
  return out;
}

}  // namespace wav::tcp
