// TCP over the IpLayer seam: a Reno-style implementation with slow start,
// congestion avoidance, fast retransmit/recovery, Jacobson RTO with
// Karn's rule, flow control and full open/close handshakes.
//
// The same code drives (a) physical-plane connections (VM migration
// transport, "Physical" baselines in the paper's figures) and (b)
// virtual-plane connections riding WAVNet or IPOP tunnels, where the
// netperf/ttcp/HTTP/MPI workloads measure exactly the congestion dynamics
// the paper's Figures 6-9 report.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "stack/ip_layer.hpp"
#include "tcp/stream_store.hpp"

namespace wav::tcp {

struct TcpConfig {
  std::uint32_t mss{1400};             // payload bytes per segment (tunnel headroom)
  std::uint32_t initial_cwnd_segments{4};
  /// Advertised window cap. The 256 KiB default matches the era of the
  /// paper's testbed (no window autotuning); it also bounds slow-start
  /// overshoot, which matters because Reno without SACK recovers badly
  /// from losing most of a window.
  std::uint64_t receive_buffer{256 * 1024};
  Duration initial_rto{seconds(1)};
  Duration min_rto{milliseconds(200)};
  Duration max_rto{seconds(60)};
  Duration time_wait{seconds(1)};      // shortened 2*MSL for simulation hygiene
  std::uint32_t max_syn_retries{6};
  std::uint32_t dupack_threshold{3};
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

[[nodiscard]] const char* to_string(TcpState s) noexcept;

enum class CloseReason {
  kNormal,        // orderly FIN exchange
  kReset,         // RST received
  kTimeout,       // retransmission limit exceeded
  kRefused,       // SYN answered by RST
};

struct TcpStats {
  std::uint64_t bytes_sent{0};       // app payload handed to the network
  std::uint64_t bytes_acked{0};
  std::uint64_t bytes_received{0};   // app payload delivered in order
  std::uint64_t segments_sent{0};
  std::uint64_t segments_received{0};
  std::uint64_t retransmits{0};
  std::uint64_t fast_retransmits{0};
  std::uint64_t rto_events{0};
  Duration smoothed_rtt{kZeroDuration};
};

class TcpLayer;

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using Ptr = std::shared_ptr<TcpConnection>;
  using DataHandler = std::function<void(const std::vector<net::Chunk>&)>;
  using EventHandler = std::function<void()>;
  using ClosedHandler = std::function<void(CloseReason)>;

  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- application API ---------------------------------------------------

  /// Queues stream data for transmission.
  void send(net::Chunk data);
  /// Convenience overloads.
  void send_bytes(std::string_view text) { send(net::Chunk::from_string(text)); }
  void send_virtual(std::uint64_t n) { send(net::Chunk::virtual_bytes(n)); }

  /// In-order payload delivery. Chunk boundaries from the sender are not
  /// necessarily preserved (TCP is a byte stream) but byte order and
  /// real/virtual classification are.
  void on_data(DataHandler handler) { on_data_ = std::move(handler); }
  void on_established(EventHandler handler) { on_established_ = std::move(handler); }
  /// Peer sent FIN (end of its stream).
  void on_peer_closed(EventHandler handler) { on_peer_closed_ = std::move(handler); }
  void on_closed(ClosedHandler handler) { on_closed_ = std::move(handler); }
  /// Fired whenever send-buffer space frees up (app can push more data).
  void on_send_ready(EventHandler handler) { on_send_ready_ = std::move(handler); }

  /// Orderly close: flushes queued data then sends FIN.
  void close();
  /// Abortive close: sends RST and drops state.
  void abort();

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] bool is_open() const noexcept { return state_ == TcpState::kEstablished; }
  [[nodiscard]] net::Endpoint local() const noexcept { return local_; }
  [[nodiscard]] net::Endpoint remote() const noexcept { return remote_; }
  [[nodiscard]] const TcpStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint64_t bytes_unsent() const noexcept {
    // Data offsets are absolute (SYN occupies offset 0, data starts at 1).
    return (1 + send_store_.end()) - snd_nxt_data_;
  }
  [[nodiscard]] std::uint64_t bytes_in_flight() const noexcept {
    return snd_nxt_data_ - snd_una_data_;
  }
  /// Send-buffer backpressure: bytes that may still be queued before the
  /// configured buffer fills.
  [[nodiscard]] std::uint64_t send_buffer_space() const noexcept;

 private:
  friend class TcpLayer;

  TcpConnection(TcpLayer& layer, net::Endpoint local, net::Endpoint remote,
                const TcpConfig& config);

  void start_connect();
  void start_accept(std::uint32_t peer_iss);

  void handle_segment(const net::TcpSegment& seg);
  void handle_ack(const net::TcpSegment& seg);
  void handle_payload(const net::TcpSegment& seg);

  void try_send();
  void send_segment(std::uint64_t offset, std::uint64_t len, bool is_retransmit);
  void send_control(net::TcpFlags flags);
  void send_ack();
  void on_rto();
  void arm_rto();
  void update_rtt(Duration sample);
  void enter_time_wait();
  void become_closed(CloseReason reason);
  void deliver_in_order();

  [[nodiscard]] std::uint64_t effective_window() const noexcept;
  [[nodiscard]] std::uint32_t wire_seq(std::uint64_t offset) const noexcept;
  [[nodiscard]] std::uint64_t unwrap_seq(std::uint32_t wire, std::uint64_t near) const noexcept;
  [[nodiscard]] std::uint32_t wire_ack() const noexcept;

  TcpLayer& layer_;
  const TcpConfig config_;  // per-connection copy (may override the layer's)
  net::Endpoint local_;
  net::Endpoint remote_;
  TcpState state_{TcpState::kClosed};

  // Sequence bookkeeping uses absolute stream offsets (SYN occupies
  // offset 0, data starts at 1, FIN takes one offset past the data);
  // 32-bit wire sequence numbers are derived modulo 2^32 from the ISS.
  std::uint32_t iss_{0};
  std::uint32_t irs_{0};

  StreamStore send_store_;          // offsets are *data* offsets starting at 1
  std::uint64_t snd_una_data_{1};   // oldest unacknowledged data offset
  std::uint64_t snd_nxt_data_{1};   // next data offset to send
  bool syn_acked_{false};
  bool fin_queued_{false};
  bool fin_sent_{false};
  bool fin_acked_{false};

  std::uint64_t rcv_nxt_{0};        // next expected absolute offset (0 = SYN)
  std::map<std::uint64_t, std::vector<net::Chunk>> reassembly_;
  std::uint64_t reassembly_bytes_{0};
  std::optional<std::uint64_t> peer_fin_offset_;
  bool peer_fin_delivered_{false};

  // Congestion control (Reno).
  std::uint64_t cwnd_{0};
  std::uint64_t ssthresh_{0};
  std::uint64_t peer_window_{65535};
  std::uint32_t dupacks_{0};
  bool in_fast_recovery_{false};
  std::uint64_t recovery_point_{0};

  // RTO machinery.
  Duration srtt_{kZeroDuration};
  Duration rttvar_{kZeroDuration};
  Duration rto_;
  std::uint32_t backoff_{0};
  std::uint32_t syn_retries_{0};
  std::optional<std::pair<std::uint64_t, TimePoint>> rtt_sample_;  // (offset end, sent at)
  sim::OneShotTimer rto_timer_;
  sim::OneShotTimer time_wait_timer_;

  TcpStats stats_;

  // Aggregate (instance-less) registry handles shared by all connections
  // in the owning simulation.
  obs::Counter* c_retransmits_{nullptr};
  obs::Counter* c_fast_retransmits_{nullptr};
  obs::Counter* c_rto_events_{nullptr};
  obs::Histogram* h_rtt_ms_{nullptr};

  DataHandler on_data_;
  EventHandler on_established_;
  EventHandler on_peer_closed_;
  ClosedHandler on_closed_;
  EventHandler on_send_ready_;
};

class TcpLayer {
 public:
  using AcceptHandler = std::function<void(TcpConnection::Ptr)>;

  explicit TcpLayer(stack::IpLayer& ip, TcpConfig config = {});
  ~TcpLayer();

  TcpLayer(const TcpLayer&) = delete;
  TcpLayer& operator=(const TcpLayer&) = delete;

  /// Starts listening; each accepted connection is handed to the handler
  /// once established. Throws if the port is already in use. The optional
  /// config override applies to connections accepted on this port (e.g.
  /// the migration receiver's fixed 128 KiB socket buffer).
  void listen(std::uint16_t port, AcceptHandler handler);
  void listen(std::uint16_t port, AcceptHandler handler, const TcpConfig& config);
  void close_listener(std::uint16_t port);

  /// Opens a client connection from an ephemeral port, optionally with a
  /// per-connection config override.
  [[nodiscard]] TcpConnection::Ptr connect(net::Endpoint remote);
  [[nodiscard]] TcpConnection::Ptr connect(net::Endpoint remote, const TcpConfig& config);

  [[nodiscard]] const TcpConfig& config() const noexcept { return config_; }
  [[nodiscard]] stack::IpLayer& ip() noexcept { return ip_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return ip_.sim(); }
  [[nodiscard]] std::size_t connection_count() const noexcept { return connections_.size(); }

 private:
  friend class TcpConnection;

  struct ConnKey {
    net::Endpoint local;
    net::Endpoint remote;
    bool operator==(const ConnKey&) const = default;
  };
  struct Listener {
    AcceptHandler handler;
    TcpConfig config;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const noexcept;
  };

  void handle_packet(const net::IpPacket& pkt);
  void remove_connection(const net::Endpoint& local, const net::Endpoint& remote);
  bool emit(const net::Endpoint& from, const net::Endpoint& to, net::TcpSegment seg);
  void send_rst_for(const net::IpPacket& pkt);

  stack::IpLayer& ip_;
  TcpConfig config_;
  std::unordered_map<ConnKey, TcpConnection::Ptr, ConnKeyHash> connections_;
  std::unordered_map<std::uint16_t, Listener> listeners_;
  std::uint16_t next_ephemeral_{32768};
  std::uint32_t next_iss_{1000};
};

}  // namespace wav::tcp
