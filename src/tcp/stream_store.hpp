// Sequence-indexed storage for a TCP send stream.
//
// Holds the contiguous byte range [base, end) of the stream that is
// either in flight or queued, preserving Chunk boundaries (real bytes vs
// virtual bulk). Supports releasing acknowledged prefixes and copying
// arbitrary sub-ranges for (re)transmission.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hpp"

namespace wav::tcp {

class StreamStore {
 public:
  /// Appends data at the end of the stream.
  void append(net::Chunk chunk);

  /// Drops all bytes below `offset` (cumulative ACK). Clamped to [base, end].
  void release_until(std::uint64_t offset);

  /// Copies the byte range [offset, offset + len) as chunks. The range
  /// must lie within [base, end).
  [[nodiscard]] std::vector<net::Chunk> copy_range(std::uint64_t offset,
                                                   std::uint64_t len) const;

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t end() const noexcept { return end_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return end_ - base_; }
  [[nodiscard]] bool empty() const noexcept { return base_ == end_; }

 private:
  struct Piece {
    std::uint64_t start{0};
    net::Chunk chunk;
  };
  std::deque<Piece> pieces_;
  std::uint64_t base_{0};
  std::uint64_t end_{0};
};

}  // namespace wav::tcp
