// Hashed hierarchical timer wheel (Varghese & Lauck) for the huge
// rotating population of relative-delay events: keepalive pulses,
// retransmit timeouts, punch retries, batch-flush windows.
//
// The 4-ary event heap (simulation.hpp) is exact but pays O(log n) per
// schedule/cancel/pop; at the 10k-host churn tier the heap is dominated
// by tens of thousands of live PeriodicTimer/OneShotTimer events, almost
// all of which are cancelled or re-armed before they fire. The wheel
// makes schedule and cancel O(1) and pop O(occupancy of one ~16 us
// bucket), while preserving the simulator's determinism contract to the
// byte: events still fire in strict global (deadline, sequence) order,
// with FIFO insertion order inside every bucket.
//
// Layout: 4 levels x 256 slots over 2^14 ns (~16.4 us) ticks. A timer
// whose tick shares the cursor's level-0 block (256 ticks) hangs off
// level 0 at slot `tick & 0xFF`; one sharing the level-1 block (2^16
// ticks) hangs off level 1 at slot `(tick >> 8) & 0xFF`; and so on. The
// four levels cover 2^32 ticks (~19.5 simulated hours); anything beyond
// parks in an overflow list. The cursor only moves when a wheel event is
// popped — and it jumps straight to the popped deadline's tick, cascading
// exactly the slots that cover it, because the popped event is the wheel
// minimum so every slot in between is provably empty. Per-level occupancy
// bitmaps make the min scan a handful of word scans.
//
// Nodes are addressed by the owning Simulation's slab-slot index, so an
// EventId cancels identically whether its event lives here or on the
// heap. The wheel never allocates per event in steady state: its node
// array grows with the slab and buckets are intrusive doubly-linked
// lists.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace wav::sim {

class TimerWheel {
 public:
  /// Sentinel "no node" index (matches no valid slab slot).
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// One tick = 2^14 ns (~16.4 us): fine enough that a 10k-timer
  /// steady state leaves only a handful of nodes per bucket (the per-pop
  /// min scan is linear in bucket occupancy), with shift-only index
  /// arithmetic. Deadlines keep full ns precision — the tick only
  /// chooses the bucket, never the firing time.
  static constexpr unsigned kTickShift = 14;
  static constexpr unsigned kLevels = 4;
  static constexpr unsigned kSlotBits = 8;
  static constexpr unsigned kSlotsPerLevel = 1u << kSlotBits;  // 256

  /// Files `idx` (a slab-slot index) under its deadline's bucket.
  /// Requires `at` >= the last extracted deadline (the simulation clock
  /// is monotonic and schedule clamps to now, so this always holds).
  void insert(std::uint32_t idx, TimePoint at, std::uint64_t seq);

  /// O(1) unlink for cancel. `idx` must be queued here.
  void remove(std::uint32_t idx);

  /// Index of the earliest (deadline, seq) timer, or kNil when empty.
  /// Read-only: never advances the cursor or cascades.
  [[nodiscard]] std::uint32_t peek_min() const;

  /// Removes `idx` — which must be the current peek_min() — and advances
  /// the cursor to its tick, cascading the covering higher-level slots.
  void extract(std::uint32_t idx);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Introspection for tests.
  [[nodiscard]] std::uint64_t cursor_tick() const noexcept { return cursor_; }
  [[nodiscard]] std::size_t overflow_size() const noexcept { return overflow_count_; }
  [[nodiscard]] static std::uint64_t tick_of(TimePoint at) noexcept {
    return static_cast<std::uint64_t>(at.since_start.count()) >> kTickShift;
  }

 private:
  /// Bucket id: level * 256 + slot; two sentinels for "overflow list" and
  /// "not queued".
  static constexpr std::uint16_t kOverflowBucket = 0xFFFE;
  static constexpr std::uint16_t kUnqueued = 0xFFFF;

  struct Node {
    TimePoint at{};
    std::uint64_t seq{0};
    std::uint32_t prev{kNil};
    std::uint32_t next{kNil};
    std::uint16_t bucket{kUnqueued};
  };

  struct BucketList {
    std::uint32_t head{kNil};
    std::uint32_t tail{kNil};
  };

  void place(std::uint32_t idx);
  void link(std::uint16_t bucket, std::uint32_t idx);
  void unlink(std::uint32_t idx);
  /// Re-files every node of `buckets_[level][slot]` relative to the
  /// (already advanced) cursor, preserving FIFO order.
  void cascade(unsigned level, unsigned slot);
  /// Re-files overflow nodes after the cursor entered a new level-3 block.
  void refill_overflow();
  void advance_to(std::uint64_t tick);

  [[nodiscard]] int next_occupied(unsigned level, unsigned from) const;
  [[nodiscard]] std::uint32_t list_min(const BucketList& list) const;

  [[nodiscard]] BucketList& bucket_list(std::uint16_t bucket) {
    return bucket == kOverflowBucket
               ? overflow_
               : buckets_[static_cast<std::size_t>(bucket)];
  }

  std::vector<Node> nodes_;  // parallel to the Simulation slab; grows with it
  std::array<BucketList, kLevels * kSlotsPerLevel> buckets_{};
  BucketList overflow_{};
  /// Per-level slot occupancy, 256 bits each.
  std::array<std::array<std::uint64_t, kSlotsPerLevel / 64>, kLevels> bitmap_{};
  std::uint64_t cursor_{0};
  std::size_t count_{0};
  std::size_t overflow_count_{0};
};

}  // namespace wav::sim
