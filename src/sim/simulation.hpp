// Deterministic discrete-event simulation engine.
//
// Everything in this repository — links, NAT boxes, protocol stacks, VM
// migration, workloads — runs as callbacks scheduled on one Simulation.
// Events fire in (time, insertion-sequence) order, which makes a run a
// pure function of (program, seed): the foundation for reproducible
// experiments and property tests.
//
// The event store is a slab of reusable slots indexed by two structures:
// a 4-ary heap of slot numbers keyed on (time, seq) for absolute-time
// `schedule_at` events, and a hashed hierarchical timer wheel
// (sim/timer_wheel.hpp) for the much larger rotating population of
// relative-delay `schedule_after` events — keepalives, RTOs, punch
// retries — which are overwhelmingly cancelled or re-armed before
// firing. Scheduling is allocation-free in the steady state (slots
// recycle; callbacks live inline in the slot, see event_callback.hpp),
// cancellation is a true removal in either store (O(log n) heap /
// O(1) wheel), and pending_events() is exact — there are no tombstones
// to drift. EventIds carry a per-slot generation so a stale id (event
// already fired or cancelled, slot since reused) is always rejected.
// The executor merges both stores by global (time, seq) order, so a run
// is byte-identical whether the wheel is enabled or not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/event_callback.hpp"
#include "sim/timer_wheel.hpp"

namespace wav::sim {

/// Handle for cancelling a scheduled event. Id 0 is "invalid". The value
/// packs (slot generation << 32 | slot index) and is opaque to callers.
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const EventId&) const = default;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` at absolute time `at` (>= now; earlier times are
  /// clamped to now, i.e. "immediately after current event"). Accepts any
  /// void() callable; small captures are stored inline in the event slab.
  template <class F>
  EventId schedule_at(TimePoint at, F&& fn) {
    return schedule_impl(at, obs::kProfCategoryNone, EventCallback(std::forward<F>(fn)),
                         /*relative=*/false);
  }

  /// Schedules `fn` after a relative delay (negative clamps to zero).
  /// Relative events are stored on the timer wheel (O(1) schedule/cancel)
  /// unless disabled; firing order is identical either way.
  template <class F>
  EventId schedule_after(Duration delay, F&& fn) {
    if (delay < kZeroDuration) delay = kZeroDuration;
    return schedule_impl(now_ + delay, obs::kProfCategoryNone,
                         EventCallback(std::forward<F>(fn)), /*relative=*/true);
  }

  /// Tagged variants: the category (from WAV_PROF_CATEGORY) rides in the
  /// event slot and roots the profiler's flamegraph for that event, so
  /// per-event-type cost attribution needs no per-callsite bookkeeping.
  /// Tags are profiler-only — scheduling order, ids and execution are
  /// identical to the untagged overloads.
  template <class F>
  EventId schedule_at(TimePoint at, obs::ProfCategoryId category, F&& fn) {
    return schedule_impl(at, category, EventCallback(std::forward<F>(fn)),
                         /*relative=*/false);
  }

  template <class F>
  EventId schedule_after(Duration delay, obs::ProfCategoryId category, F&& fn) {
    if (delay < kZeroDuration) delay = kZeroDuration;
    return schedule_impl(now_ + delay, category, EventCallback(std::forward<F>(fn)),
                         /*relative=*/true);
  }

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled, or the id is invalid. Ids of executed events are rejected
  /// by the slot generation check, so a cancel never leaks state.
  bool cancel(EventId id);

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs all events with time <= deadline, then advances the clock to
  /// exactly `deadline`. Returns false if stop() ended the run early.
  bool run_until(TimePoint deadline);

  /// Convenience: run_until(now + d).
  bool run_for(Duration d);

  /// Requests the current run()/run_until() loop to return after the
  /// in-flight event completes.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Number of events executed since construction (for tests/diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  /// Exact count of scheduled-but-not-yet-fired events (both stores).
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return heap_.size() + wheel_.size();
  }

  /// Routes future `schedule_after` events through the timer wheel (on by
  /// default; the WAVNET_DISABLE_TIMER_WHEEL env var forces it off).
  /// Toggling only affects events scheduled afterwards — both stores stay
  /// live and merge in global (time, seq) order, so A/B equivalence tests
  /// can flip this per-Simulation and compare exports byte-for-byte.
  void set_use_timer_wheel(bool on) noexcept { timer_wheel_enabled_ = on; }
  [[nodiscard]] bool timer_wheel_enabled() const noexcept {
    return timer_wheel_enabled_;
  }
  /// Events currently stored on the wheel (tests/diagnostics).
  [[nodiscard]] std::size_t wheel_events() const noexcept { return wheel_.size(); }

  /// Per-simulation observability: every component instrumenting itself
  /// reaches its registry/tracer through the Simulation it runs on, so
  /// concurrent simulations (thread-pool benches) never share state.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return *tracer_; }
  /// Flow-level causal tracing (sampled flight recorder; obs/flow.hpp).
  [[nodiscard]] obs::FlowTracer& flows() noexcept { return *flows_; }

  /// Wall-clock callback profiling (steady_clock around each event).
  /// Off by default: the measurements are real-time, so they are kept out
  /// of the metrics registry to preserve byte-identical exports; read
  /// them via callback_wall_ns().
  void set_profiling(bool on) noexcept { profiling_ = on; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  [[nodiscard]] const OnlineStats& callback_wall_ns() const noexcept {
    return callback_wall_ns_;
  }

 private:
  static constexpr std::uint32_t kNotInHeap = 0xFFFFFFFFu;
  /// heap_pos sentinel: the slot lives on the timer wheel, not the heap.
  static constexpr std::uint32_t kInWheel = 0xFFFFFFFEu;

  /// One slab slot. Reused across events; `generation` distinguishes the
  /// incarnations so stale EventIds never alias a newer event.
  struct Slot {
    TimePoint at{};
    std::uint64_t seq{0};  // tiebreaker: FIFO among same-time events
    std::uint32_t generation{1};
    std::uint32_t heap_pos{kNotInHeap};
    obs::ProfCategoryId category{obs::kProfCategoryNone};  // profiler tag
    EventCallback fn;
  };

  EventId schedule_impl(TimePoint at, obs::ProfCategoryId category, EventCallback fn,
                        bool relative);
  void release_slot(std::uint32_t idx);
  /// Strict total order: (at, seq); seq values are unique.
  [[nodiscard]] bool earlier(std::uint32_t a, std::uint32_t b) const noexcept {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);
  bool pop_and_run_next(TimePoint deadline);

  TimePoint now_{};
  Rng rng_;
  std::vector<Slot> slots_;               // slab; grows, never shrinks
  std::vector<std::uint32_t> free_slots_; // recycled slot indices
  std::vector<std::uint32_t> heap_;       // 4-ary min-heap of slot indices
  TimerWheel wheel_;                      // relative-delay (timer) events
  bool timer_wheel_enabled_{true};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  bool stopped_{false};

  // unique_ptr keeps handle addresses stable if Simulation ever moves.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::FlowTracer> flows_;
  obs::Counter* events_counter_{nullptr};
  obs::Gauge* queue_depth_gauge_{nullptr};
  bool profiling_{false};
  OnlineStats callback_wall_ns_;
};

/// RAII periodic timer. Starts firing `period` after start() and keeps
/// rescheduling itself until stop() or destruction. Used for keepalive
/// pulses, measurement polls, dirty-page sampling, etc.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> on_fire,
                obs::ProfCategoryId category = obs::kProfCategoryNone);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  /// Starts with the first firing after `initial_delay` instead of period.
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const noexcept { return pending_.valid(); }

  void set_period(Duration period) noexcept { period_ = period; }
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void fire();

  Simulation& sim_;
  Duration period_;
  std::function<void()> on_fire_;
  obs::ProfCategoryId category_{obs::kProfCategoryNone};
  EventId pending_{};
  /// Deadline of the pending firing. The next firing is anchored to
  /// `next_at_ + period` (the period grid), never `now() + period`, so
  /// cadence cannot skew even if a fire path perturbs the clock.
  TimePoint next_at_{};
};

/// RAII one-shot timer that can be re-armed; used for protocol timeouts
/// (TCP RTO, NAT binding expiry, hole-punch retries).
class OneShotTimer {
 public:
  OneShotTimer(Simulation& sim, std::function<void()> on_fire,
               obs::ProfCategoryId category = obs::kProfCategoryNone);
  ~OneShotTimer();

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer `delay` from now; cancels any pending firing.
  void arm(Duration delay);
  void cancel();
  [[nodiscard]] bool armed() const noexcept { return pending_.valid(); }
  [[nodiscard]] TimePoint deadline() const noexcept { return deadline_; }

 private:
  Simulation& sim_;
  std::function<void()> on_fire_;
  obs::ProfCategoryId category_{obs::kProfCategoryNone};
  EventId pending_{};
  TimePoint deadline_{};
  /// Bumped by every arm(); the firing lambda captures its epoch and
  /// refuses to run if a re-arm (possibly from inside on_fire itself — the
  /// TCP RTO pattern) superseded it. Belt-and-braces on top of the
  /// generation-tagged cancel.
  std::uint64_t arm_epoch_{0};
};

}  // namespace wav::sim
