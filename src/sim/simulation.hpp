// Deterministic discrete-event simulation engine.
//
// Everything in this repository — links, NAT boxes, protocol stacks, VM
// migration, workloads — runs as callbacks scheduled on one Simulation.
// Events fire in (time, insertion-sequence) order, which makes a run a
// pure function of (program, seed): the foundation for reproducible
// experiments and property tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wav::sim {

/// Handle for cancelling a scheduled event. Id 0 is "invalid".
struct EventId {
  std::uint64_t value{0};
  [[nodiscard]] constexpr bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const EventId&) const = default;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` at absolute time `at` (>= now; earlier times are
  /// clamped to now, i.e. "immediately after current event").
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (negative clamps to zero).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs all events with time <= deadline, then advances the clock to
  /// exactly `deadline`. Returns false if stop() ended the run early.
  bool run_until(TimePoint deadline);

  /// Convenience: run_until(now + d).
  bool run_for(Duration d);

  /// Requests the current run()/run_until() loop to return after the
  /// in-flight event completes.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Number of events executed since construction (for tests/diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size() - cancelled_.size();
  }

  /// Per-simulation observability: every component instrumenting itself
  /// reaches its registry/tracer through the Simulation it runs on, so
  /// concurrent simulations (thread-pool benches) never share state.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return *tracer_; }

  /// Wall-clock callback profiling (steady_clock around each event).
  /// Off by default: the measurements are real-time, so they are kept out
  /// of the metrics registry to preserve byte-identical exports; read
  /// them via callback_wall_ns().
  void set_profiling(bool on) noexcept { profiling_ = on; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  [[nodiscard]] const OnlineStats& callback_wall_ns() const noexcept {
    return callback_wall_ns_;
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // tiebreaker: FIFO among same-time events
    std::uint64_t id;
    // `fn` lives outside the priority queue ordering; shared_ptr keeps the
    // Entry copyable for std::priority_queue.
    std::shared_ptr<std::function<void()>> fn;

    bool operator>(const Entry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool pop_and_run_next(TimePoint deadline);

  TimePoint now_{};
  Rng rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  bool stopped_{false};

  // unique_ptr keeps handle addresses stable if Simulation ever moves.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::Counter* events_counter_{nullptr};
  obs::Gauge* queue_depth_gauge_{nullptr};
  bool profiling_{false};
  OnlineStats callback_wall_ns_;
};

/// RAII periodic timer. Starts firing `period` after start() and keeps
/// rescheduling itself until stop() or destruction. Used for keepalive
/// pulses, measurement polls, dirty-page sampling, etc.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> on_fire);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  /// Starts with the first firing after `initial_delay` instead of period.
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const noexcept { return pending_.valid(); }

  void set_period(Duration period) noexcept { period_ = period; }
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void fire();

  Simulation& sim_;
  Duration period_;
  std::function<void()> on_fire_;
  EventId pending_{};
};

/// RAII one-shot timer that can be re-armed; used for protocol timeouts
/// (TCP RTO, NAT binding expiry, hole-punch retries).
class OneShotTimer {
 public:
  OneShotTimer(Simulation& sim, std::function<void()> on_fire);
  ~OneShotTimer();

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arms the timer `delay` from now; cancels any pending firing.
  void arm(Duration delay);
  void cancel();
  [[nodiscard]] bool armed() const noexcept { return pending_.valid(); }
  [[nodiscard]] TimePoint deadline() const noexcept { return deadline_; }

 private:
  Simulation& sim_;
  std::function<void()> on_fire_;
  EventId pending_{};
  TimePoint deadline_{};
};

}  // namespace wav::sim
