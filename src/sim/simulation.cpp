#include "sim/simulation.hpp"

#include <cassert>
#include <chrono>
#include <memory>
#include <utility>

namespace wav::sim {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      tracer_(std::make_unique<obs::Tracer>([this] { return now_; })) {
  events_counter_ = &metrics_->counter("sim.events_executed");
  queue_depth_gauge_ = &metrics_->gauge("sim.queue_depth");
}

EventId Simulation::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, seq,
                    std::make_shared<std::function<void()>>(std::move(fn))});
  return EventId{seq};
}

EventId Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < kZeroDuration) delay = kZeroDuration;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (!id.valid() || id.value >= next_seq_) return false;
  // We cannot remove from the middle of a binary heap; tombstone instead
  // and skip at pop time. The set stays small because entries are erased
  // when their tombstone is encountered.
  return cancelled_.insert(id.value).second;
}

bool Simulation::pop_and_run_next(TimePoint deadline) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (top.at > deadline) return false;
    queue_.pop();
    if (const auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(top.at >= now_ && "event queue must be monotonic");
    now_ = top.at;
    ++executed_;
    events_counter_->inc();
    queue_depth_gauge_->set(static_cast<double>(queue_.size() - cancelled_.size()));
    if (profiling_) {
      const auto t0 = std::chrono::steady_clock::now();
      (*top.fn)();
      const auto t1 = std::chrono::steady_clock::now();
      callback_wall_ns_.add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    } else {
      (*top.fn)();
    }
    return true;
  }
  return false;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(kTimeInfinity)) {
  }
}

bool Simulation::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(deadline)) {
  }
  if (!stopped_ && deadline > now_ && deadline < kTimeInfinity) now_ = deadline;
  return !stopped_;
}

bool Simulation::run_for(Duration d) { return run_until(now_ + d); }

PeriodicTimer::PeriodicTimer(Simulation& sim, Duration period, std::function<void()> on_fire)
    : sim_(sim), period_(period), on_fire_(std::move(on_fire)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  pending_ = sim_.schedule_after(initial_delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTimer::fire() {
  pending_ = EventId{};
  // Reschedule before invoking so the callback may stop() the timer.
  pending_ = sim_.schedule_after(period_, [this] { fire(); });
  on_fire_();
}

OneShotTimer::OneShotTimer(Simulation& sim, std::function<void()> on_fire)
    : sim_(sim), on_fire_(std::move(on_fire)) {}

OneShotTimer::~OneShotTimer() { cancel(); }

void OneShotTimer::arm(Duration delay) {
  cancel();
  deadline_ = sim_.now() + delay;
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = EventId{};
    on_fire_();
  });
}

void OneShotTimer::cancel() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

}  // namespace wav::sim
