#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <utility>

namespace wav::sim {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      tracer_(std::make_unique<obs::Tracer>([this] { return now_; })),
      flows_(std::make_unique<obs::FlowTracer>(*metrics_, tracer_.get(),
                                               [this] { return now_; })) {
  events_counter_ = &metrics_->counter("sim.events_executed");
  queue_depth_gauge_ = &metrics_->gauge("sim.queue_depth");
  if (const char* env = std::getenv("WAVNET_DISABLE_TIMER_WHEEL");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    timer_wheel_enabled_ = false;
  }
}

EventId Simulation::schedule_impl(TimePoint at, obs::ProfCategoryId category,
                                  EventCallback fn, bool relative) {
  if (at < now_) at = now_;
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[idx];
  slot.at = at;
  slot.seq = next_seq_++;
  slot.category = category;
  slot.fn = std::move(fn);
  if (relative && timer_wheel_enabled_) {
    slot.heap_pos = kInWheel;
    wheel_.insert(idx, at, slot.seq);
  } else {
    slot.heap_pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(idx);
    sift_up(heap_.size() - 1);
  }
  return EventId{(static_cast<std::uint64_t>(slot.generation) << 32) | idx};
}

void Simulation::release_slot(std::uint32_t idx) {
  Slot& slot = slots_[idx];
  // Bumping the generation invalidates every outstanding id for this
  // incarnation; 0 is skipped so a packed id can never equal the
  // "invalid" sentinel.
  if (++slot.generation == 0) slot.generation = 1;
  slot.heap_pos = kNotInHeap;
  slot.fn.reset();
  free_slots_.push_back(idx);
}

bool Simulation::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (gen == 0 || idx >= slots_.size()) return false;
  Slot& slot = slots_[idx];
  if (slot.generation != gen || slot.heap_pos == kNotInHeap) return false;
  if (slot.heap_pos == kInWheel) {
    wheel_.remove(idx);
  } else {
    heap_remove(slot.heap_pos);
  }
  release_slot(idx);
  return true;
}

void Simulation::sift_up(std::size_t pos) {
  const std::uint32_t idx = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(idx, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = idx;
  slots_[idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulation::sift_down(std::size_t pos) {
  const std::uint32_t idx = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], idx)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = idx;
  slots_[idx].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulation::heap_remove(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated element may belong either direction from `pos`.
    sift_down(pos);
    sift_up(slots_[heap_[pos]].heap_pos);
  }
}

bool Simulation::pop_and_run_next(TimePoint deadline) {
  // Merge the two stores by global (time, seq) order: the next event is
  // the earlier of the heap root and the wheel minimum. `seq` values are
  // unique across both, so the merge is a strict total order and a run is
  // byte-identical however events are distributed between the stores.
  std::uint32_t idx = heap_.empty() ? kNotInHeap : heap_[0];
  bool from_wheel = false;
  if (const std::uint32_t widx = wheel_.peek_min(); widx != TimerWheel::kNil) {
    if (idx == kNotInHeap || earlier(widx, idx)) {
      idx = widx;
      from_wheel = true;
    }
  }
  if (idx == kNotInHeap) return false;
  Slot& slot = slots_[idx];
  if (slot.at > deadline) return false;
  assert(slot.at >= now_ && "event queue must be monotonic");
  now_ = slot.at;
  // Move the callback out and retire the slot before invoking, so the
  // callback can freely schedule (reusing this slot) or cancel; a cancel
  // of the in-flight event's own id correctly reports false.
  EventCallback fn = std::move(slot.fn);
  const obs::ProfCategoryId category = slot.category;
  if (from_wheel) {
    wheel_.extract(idx);
  } else {
    heap_remove(0);
  }
  release_slot(idx);
  ++executed_;
  events_counter_->inc();
  queue_depth_gauge_->set(static_cast<double>(heap_.size() + wheel_.size()));
  if (obs::Profiler::enabled()) {
    // Sampled wall-clock attribution rooted at the event's schedule-time
    // category. Purely observational: identical event order with the
    // profiler on or off (determinism contract, obs/profiler.hpp).
    const obs::ProfEventScope prof(category);
    fn();
  } else if (profiling_) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    callback_wall_ns_.add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  } else {
    fn();
  }
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(kTimeInfinity)) {
  }
}

bool Simulation::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!stopped_ && pop_and_run_next(deadline)) {
  }
  if (!stopped_ && deadline > now_ && deadline < kTimeInfinity) now_ = deadline;
  return !stopped_;
}

bool Simulation::run_for(Duration d) { return run_until(now_ + d); }

PeriodicTimer::PeriodicTimer(Simulation& sim, Duration period,
                             std::function<void()> on_fire, obs::ProfCategoryId category)
    : sim_(sim), period_(period), on_fire_(std::move(on_fire)), category_(category) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  if (initial_delay < kZeroDuration) initial_delay = kZeroDuration;
  next_at_ = sim_.now() + initial_delay;
  pending_ = sim_.schedule_after(initial_delay, category_, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTimer::fire() {
  pending_ = EventId{};
  // Reschedule before invoking so the callback may stop() the timer. The
  // next deadline is the previous one plus the period — the period grid —
  // not now() + period: the two only differ if the clock ever drifts past
  // the intended deadline, and anchoring to the grid keeps keepalive
  // cadence exact under load instead of compounding the skew.
  next_at_ = next_at_ + period_;
  Duration delay = next_at_ - sim_.now();
  if (delay < kZeroDuration) delay = kZeroDuration;
  pending_ = sim_.schedule_after(delay, category_, [this] { fire(); });
  on_fire_();
}

OneShotTimer::OneShotTimer(Simulation& sim, std::function<void()> on_fire,
                           obs::ProfCategoryId category)
    : sim_(sim), on_fire_(std::move(on_fire)), category_(category) {}

OneShotTimer::~OneShotTimer() { cancel(); }

void OneShotTimer::arm(Duration delay) {
  cancel();
  const std::uint64_t epoch = ++arm_epoch_;
  deadline_ = sim_.now() + delay;
  // The epoch guard makes reentrant re-arms (on_fire calling arm(), the
  // TCP RTO pattern) structurally safe: if this firing was superseded by
  // a newer arm() in any path the generation check doesn't cover, the
  // stale lambda refuses to clear `pending_` or fire.
  pending_ = sim_.schedule_after(delay, category_, [this, epoch] {
    if (epoch != arm_epoch_) return;
    pending_ = EventId{};
    on_fire_();
  });
}

void OneShotTimer::cancel() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

}  // namespace wav::sim
