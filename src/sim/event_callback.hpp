// Move-only callable holder for scheduled events.
//
// std::function's small-object buffer (16 bytes on libstdc++) is too
// small for the simulator's typical callbacks — a capture of `this` plus
// a refcounted frame and a couple of scalars — so scheduling through
// std::function heap-allocates on the hot path. EventCallback widens the
// inline buffer to kInlineBytes (covering essentially every callback in
// the tree) and only falls back to the heap beyond that, which is what
// lets the event slab store callbacks in place with zero per-event
// allocations.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wav::sim {

class EventCallback {
 public:
  /// Inline capacity. 48 bytes fits `this` + shared_ptr + 3 words, the
  /// largest capture the frame path schedules.
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                     std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callable wrapper
  EventCallback(F&& fn) {
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *static_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(std::move(other)); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* s);
    /// Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* s) noexcept;
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); }};

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); }};

  void move_from(EventCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace wav::sim
