#include "sim/timer_wheel.hpp"

#include <bit>
#include <cassert>

namespace wav::sim {

namespace {

constexpr std::uint64_t kSlotMask = TimerWheel::kSlotsPerLevel - 1;

/// Cursor/tick slot index at `level`.
[[nodiscard]] constexpr unsigned slot_at(std::uint64_t tick, unsigned level) noexcept {
  return static_cast<unsigned>((tick >> (TimerWheel::kSlotBits * level)) & kSlotMask);
}

/// Block id at `level`: ticks sharing it map to the same 256-slot frame.
[[nodiscard]] constexpr std::uint64_t block_at(std::uint64_t tick,
                                               unsigned level) noexcept {
  return tick >> (TimerWheel::kSlotBits * (level + 1));
}

}  // namespace

void TimerWheel::insert(std::uint32_t idx, TimePoint at, std::uint64_t seq) {
  if (idx >= nodes_.size()) nodes_.resize(static_cast<std::size_t>(idx) + 1);
  Node& n = nodes_[idx];
  assert(n.bucket == kUnqueued && "slot already queued in the wheel");
  n.at = at;
  n.seq = seq;
  n.prev = n.next = kNil;
  place(idx);
  ++count_;
}

void TimerWheel::remove(std::uint32_t idx) {
  assert(idx < nodes_.size() && nodes_[idx].bucket != kUnqueued);
  unlink(idx);
  --count_;
}

void TimerWheel::extract(std::uint32_t idx) {
  assert(idx < nodes_.size() && nodes_[idx].bucket != kUnqueued);
  const std::uint64_t t = tick_of(nodes_[idx].at);
  assert(t >= cursor_ && "extract must move forward in time");
  unlink(idx);
  --count_;
  advance_to(t);
}

void TimerWheel::place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  const std::uint64_t t = tick_of(n.at);
  assert(t >= cursor_ && "wheel deadlines are never in the past");
  for (unsigned level = 0; level < kLevels; ++level) {
    if (block_at(t, level) == block_at(cursor_, level)) {
      link(static_cast<std::uint16_t>(level * kSlotsPerLevel + slot_at(t, level)),
           idx);
      return;
    }
  }
  link(kOverflowBucket, idx);
}

void TimerWheel::link(std::uint16_t bucket, std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.bucket = bucket;
  n.next = kNil;
  BucketList& list = bucket_list(bucket);
  n.prev = list.tail;
  if (list.tail != kNil) {
    nodes_[list.tail].next = idx;
  } else {
    list.head = idx;
  }
  list.tail = idx;
  if (bucket == kOverflowBucket) {
    ++overflow_count_;
  } else {
    const unsigned level = bucket / kSlotsPerLevel;
    const unsigned slot = bucket % kSlotsPerLevel;
    bitmap_[level][slot / 64] |= std::uint64_t{1} << (slot % 64);
  }
}

void TimerWheel::unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  BucketList& list = bucket_list(n.bucket);
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    list.head = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    list.tail = n.prev;
  }
  if (n.bucket == kOverflowBucket) {
    --overflow_count_;
  } else if (list.head == kNil) {
    const unsigned level = n.bucket / kSlotsPerLevel;
    const unsigned slot = n.bucket % kSlotsPerLevel;
    bitmap_[level][slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  }
  n.bucket = kUnqueued;
  n.prev = n.next = kNil;
}

int TimerWheel::next_occupied(unsigned level, unsigned from) const {
  if (from >= kSlotsPerLevel) return -1;
  const auto& words = bitmap_[level];
  unsigned word = from / 64;
  std::uint64_t bits = words[word] & (~std::uint64_t{0} << (from % 64));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64 +
                              static_cast<unsigned>(std::countr_zero(bits)));
    }
    if (++word >= words.size()) return -1;
    bits = words[word];
  }
}

std::uint32_t TimerWheel::list_min(const BucketList& list) const {
  std::uint32_t best = kNil;
  for (std::uint32_t i = list.head; i != kNil; i = nodes_[i].next) {
    if (best == kNil || nodes_[i].at < nodes_[best].at ||
        (nodes_[i].at == nodes_[best].at && nodes_[i].seq < nodes_[best].seq)) {
      best = i;
    }
  }
  return best;
}

std::uint32_t TimerWheel::peek_min() const {
  if (count_ == 0) return kNil;
  // Levels hold disjoint, strictly increasing tick ranges relative to the
  // cursor: level 0's remaining block precedes every remaining level-1
  // slot, which precede every remaining level-2 slot, and so on, with the
  // overflow list last. The first occupied bucket in that order contains
  // the global minimum; ns-exact ordering inside the bucket is resolved
  // by a linear (deadline, seq) scan.
  for (unsigned level = 0; level < kLevels; ++level) {
    const unsigned cur = slot_at(cursor_, level);
    const unsigned from = level == 0 ? cur : cur + 1;
    const int slot = next_occupied(level, from);
    if (slot >= 0) {
      return list_min(
          buckets_[level * kSlotsPerLevel + static_cast<unsigned>(slot)]);
    }
  }
  return list_min(overflow_);
}

void TimerWheel::cascade(unsigned level, unsigned slot) {
  BucketList& list = buckets_[level * kSlotsPerLevel + slot];
  std::uint32_t i = list.head;
  list.head = list.tail = kNil;
  bitmap_[level][slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
  // Re-file in original order so intra-bucket FIFO survives the descent.
  while (i != kNil) {
    const std::uint32_t next = nodes_[i].next;
    nodes_[i].prev = nodes_[i].next = kNil;
    nodes_[i].bucket = kUnqueued;
    place(i);
    i = next;
  }
}

void TimerWheel::refill_overflow() {
  BucketList pending = overflow_;
  overflow_ = BucketList{};
  overflow_count_ = 0;
  std::uint32_t i = pending.head;
  while (i != kNil) {
    const std::uint32_t next = nodes_[i].next;
    nodes_[i].prev = nodes_[i].next = kNil;
    nodes_[i].bucket = kUnqueued;
    place(i);  // still-distant nodes re-park in the fresh overflow list
    i = next;
  }
}

void TimerWheel::advance_to(std::uint64_t tick) {
  if (tick <= cursor_) return;
  const std::uint64_t old = cursor_;
  cursor_ = tick;
  if (count_ == 0) return;
  // The caller just extracted the wheel minimum at `tick`, so every slot
  // strictly between the old cursor and `tick` is empty — only the slots
  // covering `tick` itself can hold work, and they cascade here, top
  // level first so each descent lands in already-settled lower frames.
  if (block_at(old, kLevels - 1) != block_at(tick, kLevels - 1)) refill_overflow();
  for (unsigned level = kLevels - 1; level >= 1; --level) {
    if (block_at(old, level - 1) != block_at(tick, level - 1)) {
      cascade(level, slot_at(tick, level));
    }
  }
}

}  // namespace wav::sim
