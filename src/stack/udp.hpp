// UDP over the IpLayer seam: port demultiplexing and a socket API used by
// the STUN client, hole-punching broker, CAN overlay messaging, WAVNet
// tunnels and the IPOP baseline.
#pragma once

#include <functional>
#include <unordered_map>

#include "stack/ip_layer.hpp"

namespace wav::stack {

class UdpSocket;

class UdpLayer {
 public:
  explicit UdpLayer(IpLayer& ip);
  ~UdpLayer();

  UdpLayer(const UdpLayer&) = delete;
  UdpLayer& operator=(const UdpLayer&) = delete;

  [[nodiscard]] IpLayer& ip() noexcept { return ip_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return ip_.sim(); }

 private:
  friend class UdpSocket;

  void handle_packet(const net::IpPacket& pkt);
  std::uint16_t bind(UdpSocket& socket, std::uint16_t requested_port);
  void unbind(std::uint16_t port);

  IpLayer& ip_;
  std::unordered_map<std::uint16_t, UdpSocket*> sockets_;
  std::uint16_t next_ephemeral_{49152};
};

/// RAII-bound UDP socket. Binding happens at construction; the port is
/// released on destruction.
class UdpSocket {
 public:
  using Handler =
      std::function<void(const net::Endpoint& from, const net::UdpDatagram& dgram)>;

  /// `port == 0` picks an ephemeral port. Throws std::runtime_error if the
  /// requested port is taken (configuration error, not a data-path event).
  UdpSocket(UdpLayer& layer, std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void on_receive(Handler handler) { handler_ = std::move(handler); }

  bool send_to(const net::Endpoint& dst, net::Chunk payload);
  bool send_encap(const net::Endpoint& dst, net::EncapFrame frame);

  [[nodiscard]] std::uint16_t local_port() const noexcept { return port_; }
  [[nodiscard]] net::Endpoint local_endpoint() const {
    return net::Endpoint{layer_.ip_.ip_address(), port_};
  }

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t datagrams_received{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t bytes_received{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend class UdpLayer;

  bool send_datagram(const net::Endpoint& dst, net::UdpDatagram dgram);

  UdpLayer& layer_;
  std::uint16_t port_;
  Handler handler_;
  Stats stats_;
};

}  // namespace wav::stack
