// ICMP echo over the IpLayer seam: automatic echo responder plus a
// client API keyed by echo identifier. The ping workload (Table II,
// Figure 10) is built on this.
#pragma once

#include <functional>
#include <unordered_map>

#include "stack/ip_layer.hpp"

namespace wav::stack {

class IcmpLayer {
 public:
  using ReplyHandler =
      std::function<void(net::Ipv4Address from, const net::IcmpMessage& reply)>;

  explicit IcmpLayer(IpLayer& ip);
  ~IcmpLayer();

  IcmpLayer(const IcmpLayer&) = delete;
  IcmpLayer& operator=(const IcmpLayer&) = delete;

  /// Allocates a fresh echo identifier for a ping session.
  [[nodiscard]] std::uint16_t allocate_id() { return next_id_++; }

  /// Registers the handler receiving echo replies carrying `id`.
  void on_reply(std::uint16_t id, ReplyHandler handler);
  void remove_handler(std::uint16_t id);

  /// Sends an echo request with `payload_size` virtual payload bytes
  /// (56 by default elsewhere, like the ping utility).
  bool send_echo_request(net::Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
                         std::uint64_t payload_size);

  struct Stats {
    std::uint64_t requests_sent{0};
    std::uint64_t requests_answered{0};
    std::uint64_t replies_received{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Simulation& sim() noexcept { return ip_.sim(); }

 private:
  void handle_packet(const net::IpPacket& pkt);

  IpLayer& ip_;
  std::unordered_map<std::uint16_t, ReplyHandler> handlers_;
  std::uint16_t next_id_{1};
  Stats stats_;
};

}  // namespace wav::stack
