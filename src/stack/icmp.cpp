#include "stack/icmp.hpp"

namespace wav::stack {

IcmpLayer::IcmpLayer(IpLayer& ip) : ip_(ip) {
  ip_.set_protocol_handler(net::kProtoIcmp,
                           [this](const net::IpPacket& pkt) { handle_packet(pkt); });
}

IcmpLayer::~IcmpLayer() { ip_.set_protocol_handler(net::kProtoIcmp, nullptr); }

void IcmpLayer::on_reply(std::uint16_t id, ReplyHandler handler) {
  handlers_[id] = std::move(handler);
}

void IcmpLayer::remove_handler(std::uint16_t id) { handlers_.erase(id); }

bool IcmpLayer::send_echo_request(net::Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
                                  std::uint64_t payload_size) {
  net::IcmpMessage msg;
  msg.type = net::IcmpMessage::kEchoRequest;
  msg.id = id;
  msg.seq = seq;
  msg.payload = net::Chunk::virtual_bytes(payload_size);

  ++stats_.requests_sent;
  net::IpPacket pkt;
  pkt.dst = dst;
  pkt.body = std::move(msg);
  return ip_.send_ip(std::move(pkt));
}

void IcmpLayer::handle_packet(const net::IpPacket& pkt) {
  const auto* msg = pkt.icmp();
  if (msg == nullptr) return;

  if (msg->type == net::IcmpMessage::kEchoRequest) {
    ++stats_.requests_answered;
    net::IcmpMessage reply = *msg;
    reply.type = net::IcmpMessage::kEchoReply;
    net::IpPacket out;
    out.dst = pkt.src;
    out.body = std::move(reply);
    ip_.send_ip(std::move(out));
    return;
  }
  if (msg->type == net::IcmpMessage::kEchoReply) {
    ++stats_.replies_received;
    if (const auto it = handlers_.find(msg->id); it != handlers_.end()) {
      it->second(pkt.src, *msg);
    }
  }
}

}  // namespace wav::stack
