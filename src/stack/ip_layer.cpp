#include "stack/ip_layer.hpp"

#include "common/log.hpp"

namespace wav::stack {

void IpLayer::set_protocol_handler(std::uint8_t protocol, ProtocolHandler handler) {
  if (handler && handlers_[protocol]) {
    // Two layer objects (e.g. two UdpLayers or TcpLayers) on one stack is
    // almost always a bug: the new one silently steals all traffic.
    log::warn("ip", "protocol {} handler replaced on {} — two layer objects on one stack?",
              protocol, ip_address().to_string());
  }
  handlers_[protocol] = std::move(handler);
}

void IpLayer::deliver_up(const net::IpPacket& pkt) {
  const auto& handler = handlers_[pkt.protocol()];
  if (handler) {
    handler(pkt);
  } else {
    log::trace("ip", "no handler for protocol {} at {}", pkt.protocol(),
               ip_address().to_string());
  }
}

}  // namespace wav::stack
