#include "stack/udp.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace wav::stack {

UdpLayer::UdpLayer(IpLayer& ip) : ip_(ip) {
  ip_.set_protocol_handler(net::kProtoUdp,
                           [this](const net::IpPacket& pkt) { handle_packet(pkt); });
}

UdpLayer::~UdpLayer() { ip_.set_protocol_handler(net::kProtoUdp, nullptr); }

void UdpLayer::handle_packet(const net::IpPacket& pkt) {
  const auto* dgram = pkt.udp();
  if (dgram == nullptr) return;
  const auto it = sockets_.find(dgram->dst_port);
  if (it == sockets_.end()) {
    log::trace("udp", "{}: no socket on port {}", ip_.ip_address().to_string(),
               dgram->dst_port);
    return;
  }
  UdpSocket& sock = *it->second;
  ++sock.stats_.datagrams_received;
  sock.stats_.bytes_received += dgram->payload_size();
  if (sock.handler_) {
    sock.handler_(net::Endpoint{pkt.src, dgram->src_port}, *dgram);
  }
}

std::uint16_t UdpLayer::bind(UdpSocket& socket, std::uint16_t requested_port) {
  if (requested_port != 0) {
    if (sockets_.contains(requested_port)) {
      throw std::runtime_error("UDP port already bound: " + std::to_string(requested_port));
    }
    sockets_[requested_port] = &socket;
    return requested_port;
  }
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? 49152 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (!sockets_.contains(candidate)) {
      sockets_[candidate] = &socket;
      return candidate;
    }
  }
  throw std::runtime_error("UDP ephemeral port space exhausted");
}

void UdpLayer::unbind(std::uint16_t port) { sockets_.erase(port); }

UdpSocket::UdpSocket(UdpLayer& layer, std::uint16_t port)
    : layer_(layer), port_(layer.bind(*this, port)) {}

UdpSocket::~UdpSocket() { layer_.unbind(port_); }

bool UdpSocket::send_to(const net::Endpoint& dst, net::Chunk payload) {
  net::UdpDatagram dgram;
  dgram.payload = std::move(payload);
  return send_datagram(dst, std::move(dgram));
}

bool UdpSocket::send_encap(const net::Endpoint& dst, net::EncapFrame frame) {
  net::UdpDatagram dgram;
  dgram.payload = std::move(frame);
  return send_datagram(dst, std::move(dgram));
}

bool UdpSocket::send_datagram(const net::Endpoint& dst, net::UdpDatagram dgram) {
  dgram.src_port = port_;
  dgram.dst_port = dst.port;
  ++stats_.datagrams_sent;
  stats_.bytes_sent += dgram.payload_size();

  net::IpPacket pkt;
  pkt.dst = dst.ip;
  pkt.body = std::move(dgram);
  return layer_.ip_.send_ip(std::move(pkt));
}

}  // namespace wav::stack
