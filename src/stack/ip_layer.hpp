// The network-layer seam of the protocol stack.
//
// UDP, TCP and ICMP are written once against this interface and run
// unchanged on two very different planes:
//   * the physical underlay (fabric::HostNode routes through NATs and the
//     simulated Internet), and
//   * the WAVNet/IPOP virtual plane (wavnet::VirtualIpStack resolves ARP
//     over a NetDevice and tunnels frames across the WAN).
// This mirrors the paper's architecture: applications see one IP network
// regardless of which plane carries their packets.
#pragma once

#include <array>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace wav::stack {

class IpLayer {
 public:
  using ProtocolHandler = std::function<void(const net::IpPacket&)>;

  explicit IpLayer(sim::Simulation& sim) : sim_(sim) {}
  virtual ~IpLayer() = default;

  IpLayer(const IpLayer&) = delete;
  IpLayer& operator=(const IpLayer&) = delete;

  /// Sends an IPv4 packet. A zero source address is filled with this
  /// layer's primary address. Returns false if the packet could not be
  /// handed to the network (no route / device down); delivery itself is
  /// always best-effort.
  virtual bool send_ip(net::IpPacket pkt) = 0;

  /// Primary address of this stack instance.
  [[nodiscard]] virtual net::Ipv4Address ip_address() const = 0;

  /// At most one handler per protocol; the L4 modules demultiplex ports
  /// internally.
  void set_protocol_handler(std::uint8_t protocol, ProtocolHandler handler);

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }

 protected:
  /// Called by implementations when a packet addressed to this stack
  /// arrives; dispatches to the registered protocol handler.
  void deliver_up(const net::IpPacket& pkt);

 private:
  sim::Simulation& sim_;
  std::array<ProtocolHandler, 256> handlers_{};
};

}  // namespace wav::stack
