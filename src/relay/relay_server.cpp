#include "relay/relay_server.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::relay {

using namespace overlay;

RelayServer::RelayServer(stack::IpLayer& ip) : RelayServer(ip, Config{}) {}

RelayServer::RelayServer(stack::IpLayer& ip, Config config)
    : ip_(ip),
      config_(config),
      owned_udp_(std::make_unique<stack::UdpLayer>(ip)),
      socket_(*owned_udp_, config.port),
      credit_timer_(ip.sim(), config.credit_interval, [this] { refill_credits(); }),
      idle_timer_(ip.sim(),
                  std::max<Duration>(config.channel_idle_timeout / 3, seconds(1)),
                  [this] { expire_idle_channels(); }) {
  init();
}

RelayServer::RelayServer(stack::UdpLayer& udp, Config config)
    : ip_(udp.ip()),
      config_(config),
      socket_(udp, config.port),
      credit_timer_(ip_.sim(), config.credit_interval, [this] { refill_credits(); }),
      idle_timer_(ip_.sim(),
                  std::max<Duration>(config.channel_idle_timeout / 3, seconds(1)),
                  [this] { expire_idle_channels(); }) {
  init();
}

void RelayServer::init() {
  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& d) {
    on_datagram(from, d);
  });
  obs::MetricsRegistry& reg = ip_.sim().metrics();
  // Several relays can co-host on one public IP (distinct ports), so the
  // instance label is the full endpoint, not just the address.
  const std::string instance = endpoint().to_string();
  c_allocations_ = &reg.counter("relay.allocations", instance);
  c_refreshes_ = &reg.counter("relay.refreshes", instance);
  c_alloc_failures_ = &reg.counter("relay.alloc_failures", instance);
  c_frames_relayed_ = &reg.counter("relay.frames_relayed", instance);
  c_bytes_relayed_ = &reg.counter("relay.bytes_relayed", instance);
  c_dropped_no_credit_ = &reg.counter("relay.frames_dropped_no_credit", instance);
  c_dropped_unbound_ = &reg.counter("relay.frames_dropped_unbound", instance);
  c_channels_expired_ = &reg.counter("relay.channels_expired", instance);
  g_active_channels_ = &reg.gauge("relay.active_channels", instance);
  credit_timer_.start();
  idle_timer_.start();
}

void RelayServer::sync_channel_gauge() {
  g_active_channels_->set(static_cast<double>(channels_.size()));
}

void RelayServer::crash() {
  if (down_) return;
  down_ = true;
  channels_.clear();
  sync_channel_gauge();
  credit_timer_.stop();
  idle_timer_.stop();
  ip_.sim().tracer().instant(obs::Category::kChaos, "relay.crash",
                             endpoint().to_string());
}

void RelayServer::restart() {
  if (!down_) return;
  down_ = false;
  credit_timer_.start();
  idle_timer_.start();
  ip_.sim().tracer().instant(obs::Category::kChaos, "relay.restart",
                             endpoint().to_string());
}

void RelayServer::on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram) {
  WAV_PROF_SCOPE("relay", "datagram");
  if (down_) {  // crashed process: the port is deaf
    if (const auto* encap = dgram.encap();
        encap != nullptr && encap->frame && encap->frame->flow.id != 0) {
      ip_.sim().flows().dropped(encap->frame->flow, obs::HopComponent::kRelay,
                                endpoint().to_string(),
                                obs::DropReason::kRelayDown);
    }
    return;
  }
  if (const auto* encap = dgram.encap()) {
    forward_encap(*encap);
    return;
  }
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto type = peek_type(dgram);
  if (!type) return;
  switch (*type) {
    case MsgType::kRelayAllocate: {
      if (const auto msg = parse_relay_allocate(*chunk)) handle_allocate(from, *msg);
      return;
    }
    case MsgType::kRelayRelease: {
      if (const auto msg = parse_relay_release(*chunk)) handle_release(from, *msg);
      return;
    }
    case MsgType::kRelayPulse: {
      if (const auto msg = parse_relay_pulse(*chunk)) {
        forward_control(msg->from_host, msg->to_host, *chunk);
      }
      return;
    }
    case MsgType::kRelayFlush: {
      if (const auto msg = parse_relay_flush(*chunk)) {
        forward_control(msg->from_host, msg->to_host, *chunk);
      }
      return;
    }
    case MsgType::kGroupHandshake: {
      // Group pair handshakes ride the same channel as data; the relay
      // routes by the leading (from, to) pair and never parses the rest.
      if (const auto route = parse_group_route(*chunk)) {
        forward_control(route->from_host, route->to_host, *chunk);
      }
      return;
    }
    default:
      log::debug("relay", "unexpected message type {}", static_cast<int>(*type));
      return;
  }
}

void RelayServer::handle_allocate(const net::Endpoint& from,
                                  const RelayAllocateMsg& msg) {
  const PairKey key = key_of(msg.from_host, msg.to_host);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    if (channels_.size() >= config_.max_channels) {
      ++stats_.alloc_failures;
      c_alloc_failures_->inc();
      socket_.send_to(from,
                      encode(RelayAllocateAckMsg{msg.to_host, false, false, "capacity"}));
      return;
    }
    Channel ch;
    ch.credit = config_.credit_bytes_per_interval;
    it = channels_.emplace(key, std::move(ch)).first;
    ++stats_.allocations;
    c_allocations_->inc();
    sync_channel_gauge();
    ip_.sim().tracer().instant(obs::Category::kRelay, "relay.allocate",
                               endpoint().to_string(),
                               "\"pair\":\"" + std::to_string(key.first) + "-" +
                                   std::to_string(key.second) + "\"");
  } else {
    ++stats_.refreshes;
    c_refreshes_->inc();
  }
  Channel& ch = it->second;
  Side& mine = side_of(ch, msg.from_host, msg.to_host);
  Side& theirs = other_side(ch, msg.from_host, msg.to_host);
  const bool newly_bound = !mine.bound;
  // NAT rebinding keeps working: every allocate/refresh re-learns the
  // sender's current mapping.
  mine.endpoint = from;
  mine.bound = true;
  mine.last_seen = ip_.sim().now();
  ch.last_active = ip_.sim().now();
  // peer_bound vouches only for a *live* binding: a crashed peer's side
  // stops counting once its liveness window lapses, even though the
  // survivor's refreshes keep the channel itself active.
  socket_.send_to(from,
                  encode(RelayAllocateAckMsg{msg.to_host, true, side_alive(theirs), ""}));
  // Completing the pair unblocks the side that bound first — tell it
  // proactively instead of making it wait for its next refresh.
  if (newly_bound && side_alive(theirs)) {
    socket_.send_to(theirs.endpoint,
                    encode(RelayAllocateAckMsg{msg.from_host, true, true, ""}));
  }
}

void RelayServer::handle_release(const net::Endpoint& from, const RelayReleaseMsg& msg) {
  (void)from;
  const auto it = channels_.find(key_of(msg.from_host, msg.to_host));
  if (it == channels_.end()) return;
  Side& mine = side_of(it->second, msg.from_host, msg.to_host);
  mine.bound = false;
  if (!it->second.lo_side.bound && !it->second.hi_side.bound) {
    channels_.erase(it);
    sync_channel_gauge();
  }
}

void RelayServer::forward_encap(const net::EncapFrame& encap) {
  WAV_PROF_SCOPE("relay", "forward_encap");
  const net::FlowContext* flow =
      encap.frame && encap.frame->flow.id != 0 ? &encap.frame->flow : nullptr;
  const auto it = channels_.find(key_of(encap.overlay_src, encap.overlay_dst));
  if (it == channels_.end()) {
    ++stats_.frames_dropped_unbound;
    c_dropped_unbound_->inc();
    if (flow != nullptr) {
      ip_.sim().flows().dropped(*flow, obs::HopComponent::kRelay,
                                endpoint().to_string(),
                                obs::DropReason::kRelayUnbound);
    }
    return;
  }
  Channel& ch = it->second;
  Side& src = side_of(ch, encap.overlay_src, encap.overlay_dst);
  Side& dst = side_of(ch, encap.overlay_dst, encap.overlay_src);
  if (src.bound) src.last_seen = ip_.sim().now();
  if (!src.bound || !side_alive(dst)) {
    ++stats_.frames_dropped_unbound;
    c_dropped_unbound_->inc();
    if (flow != nullptr) {
      ip_.sim().flows().dropped(*flow, obs::HopComponent::kRelay,
                                endpoint().to_string(),
                                obs::DropReason::kRelayUnbound);
    }
    return;
  }
  const std::uint64_t size = encap.wire_size();
  if (ch.credit < size) {
    ++stats_.frames_dropped_no_credit;
    c_dropped_no_credit_->inc();
    if (flow != nullptr) {
      ip_.sim().flows().dropped(*flow, obs::HopComponent::kRelay,
                                endpoint().to_string(),
                                obs::DropReason::kRelayCapacity);
    }
    return;
  }
  ch.credit -= size;
  ch.last_active = ip_.sim().now();
  ++stats_.frames_relayed;
  stats_.bytes_relayed += size;
  c_frames_relayed_->inc();
  c_bytes_relayed_->inc(size);
  if (flow != nullptr) {
    // The triangle's middle hop: tunnel_send->relay and relay->tunnel_recv
    // become separately measurable legs in the hop-pair histograms.
    ip_.sim().flows().forwarded(*flow, obs::HopComponent::kRelay,
                                endpoint().to_string());
  }
  // The shared_ptr copy keeps the pooled frame buffer alive end to end;
  // no payload bytes are duplicated by the relay hop.
  socket_.send_encap(dst.endpoint, encap);
}

void RelayServer::forward_control(HostId from_host, HostId to_host,
                                  const net::Chunk& chunk) {
  const auto it = channels_.find(key_of(from_host, to_host));
  if (it == channels_.end()) return;
  Side& src = side_of(it->second, from_host, to_host);
  if (src.bound) src.last_seen = ip_.sim().now();
  Side& dst = other_side(it->second, from_host, to_host);
  if (!side_alive(dst)) return;
  it->second.last_active = ip_.sim().now();
  socket_.send_to(dst.endpoint, chunk);
}

void RelayServer::refill_credits() {
  for (auto& [key, ch] : channels_) {
    ch.credit = std::min(ch.credit + config_.credit_bytes_per_interval,
                         2 * config_.credit_bytes_per_interval);
  }
}

void RelayServer::expire_idle_channels() {
  WAV_PROF_SCOPE("relay", "expire_channels");
  const TimePoint now = ip_.sim().now();
  bool erased = false;
  for (auto it = channels_.begin(); it != channels_.end();) {
    Channel& ch = it->second;
    // Unbind individually-stale sides so a channel kept busy by one
    // survivor still sheds its dead peer's binding.
    const auto shed_stale = [&](Side& side) {
      if (side.bound && now - side.last_seen > config_.side_liveness_timeout) {
        side.bound = false;
      }
    };
    shed_stale(ch.lo_side);
    shed_stale(ch.hi_side);
    if ((!ch.lo_side.bound && !ch.hi_side.bound) ||
        now - ch.last_active > config_.channel_idle_timeout) {
      ++stats_.channels_expired;
      c_channels_expired_->inc();
      it = channels_.erase(it);
      erased = true;
    } else {
      ++it;
    }
  }
  if (erased) sync_channel_gauge();
}

bool RelayServer::side_alive(const Side& side) const {
  return side.bound && ip_.sim().now() - side.last_seen <= config_.side_liveness_timeout;
}

}  // namespace wav::relay
