// TURN-style relay server (Ford et al., "Peer-to-Peer Communication
// Across Network Address Translators" §4): the universal fallback
// behind hole punching. Co-hosted on a rendezvous node's public IP, it
// allocates one bidirectional channel per host pair, forwards tunneled
// EncapFrames between the two bound sides, and applies capacity and
// per-interval byte-credit accounting plus idle expiry so a dead pair
// cannot pin relay resources forever.
//
// Channel addressing rides the EncapFrame overlay ids: a relayed data
// frame carries (overlay_src, overlay_dst) host ids, which the relay
// maps to the channel keyed by the unordered pair. Both sides must have
// bound (sent a RelayAllocate from their NAT mapping) before frames
// flow — the allocate from each side is also what opens that side's NAT
// pinhole toward the relay.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "overlay/messages.hpp"
#include "sim/simulation.hpp"
#include "stack/udp.hpp"

namespace wav::relay {

using overlay::HostId;

class RelayServer {
 public:
  struct Config {
    std::uint16_t port{5300};
    // Hard cap on concurrently allocated channels; allocations beyond it
    // are nacked with reason "capacity" and the pair's traversal fails.
    std::size_t max_channels{64};
    // Token-bucket byte credit per channel: refilled every interval,
    // capped at two intervals' worth. Frames beyond the credit drop.
    std::uint64_t credit_bytes_per_interval{16ull * 1024 * 1024};
    Duration credit_interval{seconds(1)};
    // A channel with no data/keepalive in this window is reclaimed.
    Duration channel_idle_timeout{seconds(60)};
    // A *side* not heard from in this window no longer counts as bound,
    // even while the other side keeps the channel busy. Without per-side
    // liveness a survivor's one-sided refreshes and pulses keep a dead
    // peer's binding immortal, and every re-allocate sees peer_bound=true
    // — the relay then vouches forever for a host that crashed (zombie
    // relayed links under churn). Must exceed the agents' refresh and
    // pulse cadences with margin.
    Duration side_liveness_timeout{seconds(20)};
  };

  explicit RelayServer(stack::IpLayer& ip);
  RelayServer(stack::IpLayer& ip, Config config);
  /// Co-hosted form: binds on an existing UDP layer. An IpLayer carries
  /// at most one UdpLayer, so a relay sharing the rendezvous node must
  /// share its UdpLayer (distinct port) instead of creating a second one.
  RelayServer(stack::UdpLayer& udp, Config config);

  [[nodiscard]] net::Endpoint endpoint() const {
    return {ip_.ip_address(), config_.port};
  }

  [[nodiscard]] std::size_t active_channels() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] bool down() const noexcept { return down_; }

  /// Ungraceful process death: every channel is lost and the port goes
  /// deaf until restart(). Agents notice via missed refresh acks and
  /// fail over to a surviving relay.
  void crash();
  void restart();

  struct Stats {
    std::uint64_t allocations{0};   // new channels created
    std::uint64_t refreshes{0};     // re-binds of an existing channel
    std::uint64_t alloc_failures{0};
    std::uint64_t frames_relayed{0};
    std::uint64_t bytes_relayed{0};
    std::uint64_t frames_dropped_no_credit{0};
    std::uint64_t frames_dropped_unbound{0};
    std::uint64_t channels_expired{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Side {
    net::Endpoint endpoint{};
    bool bound{false};
    TimePoint last_seen{};  // last allocate/pulse/frame from this side
  };
  struct Channel {
    Side lo_side;  // side of the smaller host id in the pair key
    Side hi_side;
    TimePoint last_active{};
    std::uint64_t credit{0};
  };
  using PairKey = std::pair<HostId, HostId>;

  void on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void handle_allocate(const net::Endpoint& from, const overlay::RelayAllocateMsg& msg);
  void handle_release(const net::Endpoint& from, const overlay::RelayReleaseMsg& msg);
  void forward_encap(const net::EncapFrame& encap);
  /// Control messages (pulse/flush) forwarded verbatim to the other side.
  void forward_control(HostId from_host, HostId to_host, const net::Chunk& chunk);
  void refill_credits();
  void expire_idle_channels();
  void sync_channel_gauge();

  [[nodiscard]] static PairKey key_of(HostId a, HostId b) {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }
  /// The side of `id` in the channel for key_of(id, peer).
  [[nodiscard]] static Side& side_of(Channel& ch, HostId id, HostId peer) {
    return id < peer ? ch.lo_side : ch.hi_side;
  }
  [[nodiscard]] static Side& other_side(Channel& ch, HostId id, HostId peer) {
    return id < peer ? ch.hi_side : ch.lo_side;
  }
  /// Bound AND recently heard from — what peer_bound reports and what
  /// forwarding requires.
  [[nodiscard]] bool side_alive(const Side& side) const;

  void init();

  stack::IpLayer& ip_;
  Config config_;
  std::unique_ptr<stack::UdpLayer> owned_udp_;  // standalone form only
  stack::UdpSocket socket_;

  // Ordered map: the idle-expiry sweep iterates it, and deterministic
  // iteration order is part of the byte-identical-exports contract.
  std::map<PairKey, Channel> channels_;
  sim::PeriodicTimer credit_timer_;
  sim::PeriodicTimer idle_timer_;
  Stats stats_;
  bool down_{false};

  obs::Counter* c_allocations_{nullptr};
  obs::Counter* c_refreshes_{nullptr};
  obs::Counter* c_alloc_failures_{nullptr};
  obs::Counter* c_frames_relayed_{nullptr};
  obs::Counter* c_bytes_relayed_{nullptr};
  obs::Counter* c_dropped_no_credit_{nullptr};
  obs::Counter* c_dropped_unbound_{nullptr};
  obs::Counter* c_channels_expired_{nullptr};
  obs::Gauge* g_active_channels_{nullptr};
};

}  // namespace wav::relay
