#include "churn/churn.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace wav::churn {

namespace {

constexpr Duration kTickPeriod = seconds(1);

/// Shifted exponential: min + Exp(mean - min). Degenerates to `min`
/// when mean <= min. The 1-u guard keeps log() off exactly zero.
Duration sample_shifted_exp(Rng& rng, Duration min, Duration mean) {
  if (mean <= min) return min;
  const double tail_ns = static_cast<double>((mean - min).count());
  const double u = rng.uniform();
  const double draw = -std::log(1.0 - u * 0.999999) * tail_ns;
  return min + Duration{static_cast<Duration::rep>(draw)};
}

}  // namespace

NatMix NatMix::trautwein_global() {
  NatMix m;
  m.open_internet = 0.08;
  m.full_cone = 0.12;
  m.restricted_cone = 0.17;
  m.port_restricted_cone = 0.48;
  m.symmetric = 0.15;
  return m;
}

NatMix NatMix::trautwein_mobile() {
  NatMix m;
  m.open_internet = 0.02;
  m.full_cone = 0.05;
  m.restricted_cone = 0.08;
  m.port_restricted_cone = 0.30;
  m.symmetric = 0.55;
  return m;
}

NatMix NatMix::campus() {
  NatMix m;
  m.open_internet = 0.10;
  m.full_cone = 0.30;
  m.restricted_cone = 0.25;
  m.port_restricted_cone = 0.35;
  m.symmetric = 0.0;
  return m;
}

nat::NatType NatMix::sample(Rng& rng) const {
  const double total =
      open_internet + full_cone + restricted_cone + port_restricted_cone + symmetric;
  double x = rng.uniform() * (total > 0 ? total : 1.0);
  if ((x -= open_internet) < 0) return nat::NatType::kOpenInternet;
  if ((x -= full_cone) < 0) return nat::NatType::kFullCone;
  if ((x -= restricted_cone) < 0) return nat::NatType::kRestrictedCone;
  if ((x -= port_restricted_cone) < 0) return nat::NatType::kPortRestrictedCone;
  return nat::NatType::kSymmetric;
}

Duration ChurnPlan::sample_session(Rng& rng) const {
  return sample_shifted_exp(rng, min_session, mean_session);
}

Duration ChurnPlan::sample_offline(Rng& rng) const {
  return sample_shifted_exp(rng, min_offline, mean_offline);
}

ChurnEngine::ChurnEngine(sim::Simulation& sim, ChurnPlan plan)
    : sim_(sim), plan_(plan), tick_timer_(sim, kTickPeriod, [this] { tick(); },
                  WAV_PROF_CATEGORY("churn", "tick_event")) {
  auto& reg = sim_.metrics();
  const std::string inst = "churn";
  c_arrivals_ = &reg.counter("churn.arrivals", inst);
  c_departures_ = &reg.counter("churn.departures_graceful", inst);
  c_crashes_ = &reg.counter("churn.crashes", inst);
  c_rehomes_ = &reg.counter("churn.rehomes", inst);
  c_connects_attempted_ = &reg.counter("churn.connects_attempted", inst);
  c_connects_ok_ = &reg.counter("churn.connects_ok", inst);
  c_connects_failed_ = &reg.counter("churn.connects_failed", inst);
  g_online_ = &reg.gauge("churn.online_hosts", inst);
  g_registered_online_ = &reg.gauge("churn.registered_online_hosts", inst);
  h_converge_ms_ = &reg.histogram(
      "churn.converge_ms", {50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000}, inst);
}

void ChurnEngine::add_host(overlay::HostAgent& agent) {
  Slot slot;
  slot.agent = &agent;
  slots_.push_back(slot);
}

void ChurnEngine::start() {
  running_ = true;
  Rng& rng = sim_.rng();
  const std::size_t n = slots_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Evenly spaced across the ramp with per-slot jitter, so the join
    // wave is staggered but the overall arrival rate is flat.
    const double frac = (static_cast<double>(i) + rng.uniform()) /
                        static_cast<double>(n > 0 ? n : 1);
    const auto delay = Duration{
        static_cast<Duration::rep>(static_cast<double>(plan_.ramp.count()) * frac)};
    sim_.schedule_after(delay, WAV_PROF_CATEGORY("churn", "arrival_event"), [this, i] {
      if (running_) arrive(i);
    });
  }
  tick_timer_.start();
}

void ChurnEngine::stop() {
  running_ = false;
  tick_timer_.stop();
}

void ChurnEngine::arrive(std::size_t idx) {
  WAV_PROF_SCOPE("churn", "arrive");
  Slot& slot = slots_[idx];
  if (slot.online) return;
  slot.online = true;
  slot.online_since = sim_.now();
  slot.was_registered = false;
  slot.lost_registration_at = kTimeInfinity;
  ++online_;
  ++stats_.arrivals;
  c_arrivals_->inc();
  g_online_->set(static_cast<double>(online_));
  if (!slot.started) {
    slot.started = true;
    slot.agent->start([this, idx](bool ok) {
      if (ok) on_registered(idx);
    });
  } else {
    slot.agent->go_online([this, idx](bool ok) {
      if (ok) on_registered(idx);
    });
  }
  // The session clock starts at arrival, not at convergence: a host that
  // crashes while still registering is exactly the hard case.
  const Duration session = plan_.sample_session(sim_.rng());
  sim_.schedule_after(session, WAV_PROF_CATEGORY("churn", "depart_event"), [this, idx] {
    if (running_) depart(idx);
  });
}

void ChurnEngine::depart(std::size_t idx) {
  WAV_PROF_SCOPE("churn", "depart");
  Slot& slot = slots_[idx];
  if (!slot.online) return;
  const bool crash = sim_.rng().chance(plan_.crash_fraction);
  slot.agent->go_offline(/*graceful=*/!crash);
  slot.online = false;
  slot.departed_at = sim_.now();
  slot.lost_registration_at = kTimeInfinity;
  --online_;
  if (crash) {
    ++stats_.crashes;
    c_crashes_->inc();
  } else {
    ++stats_.departures_graceful;
    c_departures_->inc();
  }
  g_online_->set(static_cast<double>(online_));
  const Duration offline = plan_.sample_offline(sim_.rng());
  sim_.schedule_after(offline, WAV_PROF_CATEGORY("churn", "rejoin_event"), [this, idx] {
    if (running_) arrive(idx);
  });
}

void ChurnEngine::on_registered(std::size_t idx) {
  Slot& slot = slots_[idx];
  if (!slot.online) return;  // registration raced a departure
  const TimePoint now = sim_.now();
  if (!slot.was_registered) {
    // First registration of this session: arrival convergence.
    h_converge_ms_->observe(to_milliseconds(now - slot.online_since));
    slot.was_registered = true;
    issue_connects(idx);
  }
  // Re-homes are counted by the tick from the agent's failover counter:
  // the agent re-registers internally (heartbeat NACK, shard failover)
  // without calling the registration handler again.
}

void ChurnEngine::issue_connects(std::size_t idx) {
  if (plan_.connect_fanout == 0) return;
  Slot& slot = slots_[idx];
  // Query around a random point so the dialed peers spread across the
  // CAN space instead of clustering near this host's own attributes.
  std::vector<double> target;
  const std::size_t dims = slot.agent->self_info().attributes.size();
  target.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d) target.push_back(sim_.rng().uniform());
  overlay::HostAgent* agent = slot.agent;
  const overlay::HostId self = agent->id();
  agent->query(target, plan_.connect_fanout + 1, [this, agent, self](
                                                     std::vector<overlay::HostInfo> hits) {
    std::size_t dialed = 0;
    for (const overlay::HostInfo& peer : hits) {
      if (peer.host_id == self) continue;
      if (dialed >= plan_.connect_fanout) break;
      if (agent->link_established(peer.host_id)) continue;
      ++dialed;
      ++stats_.connects_attempted;
      c_connects_attempted_->inc();
      agent->connect_to(peer, [this](bool ok, overlay::HostId) {
        if (ok) {
          ++stats_.connects_ok;
          c_connects_ok_->inc();
        } else {
          ++stats_.connects_failed;
          c_connects_failed_->inc();
        }
      });
    }
  });
}

void ChurnEngine::tick() {
  WAV_PROF_SCOPE("churn", "tick");
  const TimePoint now = sim_.now();
  std::size_t registered_online = 0;
  for (Slot& slot : slots_) {
    if (!slot.online) continue;
    const bool reg = slot.agent->registered();
    if (reg) ++registered_online;
    // Shard failovers complete in milliseconds (the agent re-registers
    // the moment it gives up on the old shard), so a 1 Hz edge detector
    // on registered() would miss them all. The agent's failover counter
    // is the ground truth; latency lives in the overlay.rehome_ms
    // histogram the agent itself populates.
    const std::uint32_t failovers = slot.agent->rendezvous_failovers();
    if (failovers > slot.last_failovers) {
      const std::uint32_t delta = failovers - slot.last_failovers;
      stats_.rehomes += delta;
      c_rehomes_->inc(delta);
      slot.last_failovers = failovers;
    }
    if (!slot.was_registered) continue;  // still in arrival convergence
    if (!reg && slot.lost_registration_at == kTimeInfinity) {
      // Registration dropped and has not come back by this tick: the
      // convergence invariant grants a fresh deadline from here.
      slot.lost_registration_at = now;
    } else if (reg && slot.lost_registration_at != kTimeInfinity) {
      slot.lost_registration_at = kTimeInfinity;
    }
  }
  g_registered_online_->set(static_cast<double>(registered_online));
}

std::vector<overlay::HostAgent*> ChurnEngine::convergent_agents() const {
  const TimePoint now = sim_.now();
  std::vector<overlay::HostAgent*> out;
  for (const Slot& slot : slots_) {
    if (!slot.online) continue;
    if (now - slot.online_since < plan_.convergence_deadline) continue;
    // A host mid-re-home is not in violation until the re-home itself
    // has outlived the deadline (its shard may have died seconds ago).
    if (!slot.agent->registered() && slot.lost_registration_at != kTimeInfinity &&
        now - slot.lost_registration_at < plan_.convergence_deadline) {
      continue;
    }
    out.push_back(slot.agent);
  }
  return out;
}

std::vector<overlay::HostId> ChurnEngine::reclaimable_departed() const {
  const TimePoint now = sim_.now();
  std::vector<overlay::HostId> out;
  for (const Slot& slot : slots_) {
    if (slot.online || !slot.started) continue;
    if (now - slot.departed_at < plan_.reclaim_deadline) continue;
    out.push_back(slot.agent->id());
  }
  return out;
}

void ChurnEngine::attach(chaos::InvariantChecker& checker) {
  checker.set_churn_agents([this] { return convergent_agents(); });
  checker.set_departed_hosts([this] { return reclaimable_departed(); });
}

}  // namespace wav::churn
