// Deterministic membership churn engine.
//
// A VPC over WAVNet never sees a static population: desktops arrive,
// leave gracefully, and crash, continuously. ChurnPlan captures that
// regime as seeded distributions — exponential inter-arrival and session
// lengths, a graceful-vs-crash split, NAT-type mixes sampled from
// measured populations (Trautwein et al.'s libp2p study) — and
// ChurnEngine replays it over a pool of HostAgents by driving their
// go_online()/go_offline() lifecycle. Agents are parked, never
// destroyed, so scheduled callbacks inside the overlay stay valid across
// a host's whole arrival/departure history.
//
// The engine is also the bookkeeper the churn invariants need: it knows
// when each host came online (so it can say which ones OUGHT to have
// converged to registered by now), when each departed (so it can say
// whose registrations and links must have been reclaimed), and it
// measures registration-convergence latency as a histogram (re-home
// latency is measured inside HostAgent as overlay.rehome_ms — the
// failover completes in milliseconds, below any external sampling
// tick). attach() wires those expectations into a
// chaos::InvariantChecker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chaos/invariants.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "nat/nat_gateway.hpp"
#include "overlay/host_agent.hpp"
#include "sim/simulation.hpp"

namespace wav::churn {

/// A NAT-type population: relative weights, sampled per arriving host.
/// The presets follow the measured shares reported for public P2P
/// populations (most hosts behind port-restricted cones, a meaningful
/// symmetric/CGNAT tail, a small directly-reachable slice).
struct NatMix {
  double open_internet{0.0};
  double full_cone{0.0};
  double restricted_cone{0.0};
  double port_restricted_cone{1.0};
  double symmetric{0.0};

  /// Measured global desktop mix: mostly cone NATs, ~15% symmetric,
  /// ~8% publicly reachable.
  [[nodiscard]] static NatMix trautwein_global();
  /// Mobile/CGNAT-heavy population: symmetric NATs dominate, punching
  /// fails often and the relay tier carries real load.
  [[nodiscard]] static NatMix trautwein_mobile();
  /// Benign campus population: cones only, no symmetric tail.
  [[nodiscard]] static NatMix campus();

  [[nodiscard]] nat::NatType sample(Rng& rng) const;
};

/// Seeded description of a churn regime. Every duration is sampled from
/// a shifted exponential (min + Exp(mean - min)) so sessions are long
/// enough to converge but the tail stays heavy, matching observed
/// peer-session distributions.
struct ChurnPlan {
  /// First arrivals are spread across this ramp (staggered join).
  Duration ramp{seconds(60)};
  Duration mean_session{seconds(180)};
  Duration min_session{seconds(45)};
  Duration mean_offline{seconds(60)};
  Duration min_offline{seconds(10)};
  /// Fraction of departures that are ungraceful (silent crash: no
  /// Deregister, peers and servers must time the host out).
  double crash_fraction{0.3};
  /// Peers each host dials (via a rendezvous query) once registered.
  std::size_t connect_fanout{2};
  /// A host online this long must be registered (re-homed if its shard
  /// died) — the convergence invariant's deadline.
  Duration convergence_deadline{seconds(45)};
  /// A host departed this long must have no trace left anywhere — no
  /// registration on a live shard, no established link on a survivor.
  /// Must exceed worst-case expiry (host_expiry + expiry sweep + bucket
  /// granularity) plus the survivors' idle-out + give-up window.
  Duration reclaim_deadline{seconds(150)};
  NatMix nat_mix{};

  [[nodiscard]] Duration sample_session(Rng& rng) const;
  [[nodiscard]] Duration sample_offline(Rng& rng) const;
};

class ChurnEngine {
 public:
  ChurnEngine(sim::Simulation& sim, ChurnPlan plan);

  ChurnEngine(const ChurnEngine&) = delete;
  ChurnEngine& operator=(const ChurnEngine&) = delete;

  /// Adds a parked agent to the pool. Call before start(); the agent
  /// must not have been start()ed — the engine owns its lifecycle.
  void add_host(overlay::HostAgent& agent);

  /// Schedules the initial arrivals across plan.ramp and begins the
  /// continuous churn loop plus the 1 s bookkeeping tick.
  void start();

  /// Freezes churn: no further departures or arrivals fire. Hosts
  /// currently online stay online (and converge); hosts offline stay
  /// departed (and must be reclaimed). Benches call this ahead of the
  /// final invariant sweep so the system can quiesce.
  void stop();

  /// Hosts online past the convergence deadline and not inside a
  /// re-home window — each must satisfy every per-agent invariant.
  [[nodiscard]] std::vector<overlay::HostAgent*> convergent_agents() const;
  /// Hosts departed past the reclaim deadline (and still offline) —
  /// no live shard may know them, no survivor may hold a link to them.
  [[nodiscard]] std::vector<overlay::HostId> reclaimable_departed() const;

  /// Wires convergent_agents()/reclaimable_departed() into the checker.
  void attach(chaos::InvariantChecker& checker);

  struct Stats {
    std::uint64_t arrivals{0};
    std::uint64_t departures_graceful{0};
    std::uint64_t crashes{0};
    std::uint64_t rehomes{0};  // shard failovers observed across the fleet
    std::uint64_t connects_attempted{0};
    std::uint64_t connects_ok{0};
    std::uint64_t connects_failed{0};
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t online_count() const noexcept { return online_; }
  [[nodiscard]] std::size_t pool_size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  struct Slot {
    overlay::HostAgent* agent{nullptr};
    bool started{false};  // first arrival uses start(), later ones go_online()
    bool online{false};
    bool was_registered{false};  // this session has completed a registration
    TimePoint online_since{};
    TimePoint departed_at{};
    TimePoint lost_registration_at{kTimeInfinity};
    std::uint32_t last_failovers{0};  // agent failover counter at last tick
  };

  void arrive(std::size_t idx);
  void depart(std::size_t idx);
  void on_registered(std::size_t idx);
  void issue_connects(std::size_t idx);
  void tick();  // 1 s bookkeeping: failover counting + gauges

  sim::Simulation& sim_;
  ChurnPlan plan_;
  std::vector<Slot> slots_;
  std::size_t online_{0};
  bool running_{false};
  Stats stats_;
  sim::PeriodicTimer tick_timer_;

  obs::Counter* c_arrivals_{nullptr};
  obs::Counter* c_departures_{nullptr};
  obs::Counter* c_crashes_{nullptr};
  obs::Counter* c_rehomes_{nullptr};
  obs::Counter* c_connects_attempted_{nullptr};
  obs::Counter* c_connects_ok_{nullptr};
  obs::Counter* c_connects_failed_{nullptr};
  obs::Gauge* g_online_{nullptr};
  obs::Gauge* g_registered_online_{nullptr};
  obs::Histogram* h_converge_ms_{nullptr};
};

}  // namespace wav::churn
