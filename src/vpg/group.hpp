// Virtual Private Groups: the shared vocabulary of the VPG subsystem.
//
// WAVNet's flat virtual LAN becomes multi-tenant by carving the overlay
// into membership-managed groups (the Virtual Private Overlay extension
// of Wolinsky et al.): a GroupAuthority co-hosted on the rendezvous
// fleet owns each group's lifecycle, members adopt monotonically
// versioned membership epochs, and the WAV-Switch scopes its FDB and
// broadcast domain by GroupId so one physical tunnel set carries N
// isolated L2 domains.
//
// This header keeps the light, dependency-free pieces — ids, the epoch
// record and its wire codec, the GroupGate interface the switch consults
// per frame, and the GroupLog event collector behind --groups-out — so
// wavnet/ can include it without pulling in the authority or member
// machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/units.hpp"
#include "net/packet.hpp"

namespace wav::vpg {

/// Group identifier. 0 is reserved for "no group" (the legacy flat LAN);
/// frames and FDB entries carry it as their isolation tag.
using GroupId = std::uint32_t;

/// One group's membership state at one version. Versions are bumped by
/// the authority on every mutation and never reused; receivers adopt an
/// epoch iff its version exceeds the one they hold (last-writer-wins
/// under replication). Member/invited/revoked lists are kept sorted so
/// identical states serialize identically (determinism contract).
struct GroupEpoch {
  GroupId group{0};
  std::uint64_t version{0};
  TimePoint changed_at{};  // authority sim-time of the last mutation
  std::vector<std::uint64_t> members;  // sorted host ids
  std::vector<std::uint64_t> invited;  // sorted host ids (may join)
  std::vector<std::uint64_t> revoked;  // sorted host ids (tombstones)

  [[nodiscard]] bool is_member(std::uint64_t host) const;
  [[nodiscard]] bool is_invited(std::uint64_t host) const;
  [[nodiscard]] bool is_revoked(std::uint64_t host) const;
};

/// Membership operations a member can ask the authority to apply.
enum class GroupOp : std::uint8_t {
  kCreate = 1,  // actor creates the group and becomes its first member
  kInvite,      // actor invites target
  kJoin,        // actor joins (must be invited, or the group's creator)
  kLeave,       // actor leaves gracefully
  kRevoke,      // actor revokes target's membership (tombstoned)
};

[[nodiscard]] const char* to_string(GroupOp op) noexcept;

/// Outcome codes for a GroupOpAck.
enum class GroupOpStatus : std::uint8_t {
  kOk = 0,
  kUnknownGroup,
  kExists,       // create for a group id already in use
  kNotInvited,   // join without a standing invite
  kNotMember,    // leave/invite/revoke by or on a non-member
  kRevoked,      // actor has been revoked; no further ops accepted
};

[[nodiscard]] const char* to_string(GroupOpStatus status) noexcept;

// --- wire formats -------------------------------------------------------
// Group control messages ride the overlay MsgType space (kGroupOp..
// kGroupHandshake, overlay/messages.hpp) but their bodies are encoded
// here: the rendezvous/relay layers only ever need the leading type byte
// (and, for relayed handshakes, the (from, to) routing pair — see
// overlay::parse_group_route).

struct GroupOpMsg {
  std::uint64_t op_id{0};  // echoes back in the ack (retry matching)
  GroupOp op{GroupOp::kCreate};
  GroupId group{0};
  std::uint64_t actor{0};
  std::uint64_t target{0};  // invite/revoke subject; 0 otherwise
};

struct GroupOpAckMsg {
  std::uint64_t op_id{0};
  GroupOpStatus status{GroupOpStatus::kOk};
  GroupEpoch epoch;  // authoritative state after the op (when known)
};

/// Member -> authority anti-entropy: "here is the version I hold for
/// each group I think I'm in" (version 0 = none yet).
struct GroupSyncMsg {
  std::uint64_t host{0};
  std::vector<std::pair<GroupId, std::uint64_t>> held;  // (group, version)
};

/// Authority -> member epoch push (also the sync reply, one per group
/// with news). Members ignore versions at or below what they hold.
struct GroupEpochMsg {
  GroupEpoch epoch;
};

/// Authority <-> authority replication payload: full records for every
/// group the sender owns knowledge of. Rides the shard-ping channel as
/// an opaque payload (overlay::ShardPingMsg::payload) and doubles as the
/// direct kGroupReplicate body for eager post-write replication.
struct GroupReplicateMsg {
  std::vector<GroupEpoch> epochs;
};

/// Host <-> host modeled pair handshake for one group, riding the
/// punched tunnel socket: `round` counts the RTT exchanges; the
/// responder echoes the round until the configured count is reached.
struct GroupHandshakeMsg {
  std::uint64_t from_host{0};
  std::uint64_t to_host{0};
  GroupId group{0};
  std::uint32_t round{0};
  bool reply{false};
};

void encode_epoch(ByteWriter& w, const GroupEpoch& epoch);
[[nodiscard]] std::optional<GroupEpoch> parse_epoch(ByteReader& r);

[[nodiscard]] net::Chunk encode(const GroupOpMsg&);
[[nodiscard]] net::Chunk encode(const GroupOpAckMsg&);
[[nodiscard]] net::Chunk encode(const GroupSyncMsg&);
[[nodiscard]] net::Chunk encode(const GroupEpochMsg&);
[[nodiscard]] net::Chunk encode(const GroupReplicateMsg&);
[[nodiscard]] net::Chunk encode(const GroupHandshakeMsg&);

[[nodiscard]] std::optional<GroupOpMsg> parse_group_op(const net::Chunk&);
[[nodiscard]] std::optional<GroupOpAckMsg> parse_group_op_ack(const net::Chunk&);
[[nodiscard]] std::optional<GroupSyncMsg> parse_group_sync(const net::Chunk&);
[[nodiscard]] std::optional<GroupEpochMsg> parse_group_epoch(const net::Chunk&);
[[nodiscard]] std::optional<GroupReplicateMsg> parse_group_replicate(const net::Chunk&);
[[nodiscard]] std::optional<GroupHandshakeMsg> parse_group_handshake(const net::Chunk&);

/// Serializes epochs for CAN item storage (and back). The CAN payload is
/// self-describing so a query hit can be merged without the authority.
[[nodiscard]] ByteBuffer epoch_to_bytes(const GroupEpoch& epoch);
[[nodiscard]] std::optional<GroupEpoch> epoch_from_bytes(std::span<const std::byte> b);

// --- the per-frame gate -------------------------------------------------

/// The interface the WAV-Switch consults on its data path. Implemented
/// by vpg::GroupMember; kept abstract so wavnet/ depends only on this
/// header. All checks are against the member's *adopted* epochs — the
/// whole point is that isolation follows membership state, not wishes.
class GroupGate {
 public:
  virtual ~GroupGate() = default;

  /// May the local switch tunnel a group-`g` frame to `peer`? Requires a
  /// live membership on both ends of the pair and a completed handshake.
  [[nodiscard]] virtual bool egress_allowed(GroupId g, std::uint64_t peer) = 0;

  /// Accept a group-`g` frame arriving from `peer`? Same membership
  /// rules, judged by the receiver's own adopted epoch.
  [[nodiscard]] virtual bool ingress_allowed(GroupId g, std::uint64_t peer) = 0;

  /// Appends the groups a local broadcast/flood replicates into (the
  /// member's active memberships), sorted ascending.
  virtual void broadcast_groups(std::vector<GroupId>& out) = 0;

  /// Tripwire, called after a frame is accepted and handed to the local
  /// bridge: delivery across a membership the member has already adopted
  /// as revoked is an invariant violation, counted independently of the
  /// gate checks above so a gating bug cannot hide itself.
  virtual void note_delivered(GroupId g, std::uint64_t peer) = 0;
};

// --- --groups-out event log --------------------------------------------

/// Append-only collector behind the --groups-out export: membership
/// epochs, handshakes and revocation teardowns as one JSON object per
/// line, in event order (deterministic per seed — every timestamp is sim
/// time). Pure recording: attaching or detaching a log must not change
/// any behavior or any other export byte.
class GroupLog {
 public:
  struct Event {
    TimePoint at{};
    std::string kind;    // "op", "epoch_adopted", "handshake", ...
    std::string host;    // acting host/authority instance
    GroupId group{0};
    std::uint64_t version{0};
    std::uint64_t peer{0};    // subject host id (0 when n/a)
    std::string detail;       // kind-specific note ("revoke", "complete")
    double latency_ms{-1.0};  // handshake/teardown latency (-1 = n/a)
  };

  void record(Event event) { events_.push_back(std::move(event)); }
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

 private:
  std::vector<Event> events_;
};

}  // namespace wav::vpg
