#include "vpg/group_authority.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"

namespace wav::vpg {
namespace {

using overlay::MsgType;

/// Sorted-insert / erase helpers for the epoch's id lists.
void insert_sorted(std::vector<std::uint64_t>& v, std::uint64_t id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

void erase_sorted(std::vector<std::uint64_t>& v, std::uint64_t id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

}  // namespace

GroupAuthority::GroupAuthority(overlay::RendezvousServer& rv)
    : GroupAuthority(rv, Config{}) {}

GroupAuthority::GroupAuthority(overlay::RendezvousServer& rv, Config config)
    : rv_(rv),
      config_(std::move(config)),
      socket_(rv.udp(), config_.port),
      can_refresh_timer_(
          rv.udp().sim(), config_.can_refresh, [this] { can_refresh_tick(); },
          WAV_PROF_CATEGORY("vpg", "can_refresh")) {
  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& dgram) {
    on_datagram(from, dgram);
  });
  // Replication piggybacks on the rendezvous shard-ping channel: our full
  // record set rides every ping/pong, and sibling payloads merge here.
  rv_.set_shard_payload([this] { return replication_payload(); },
                        [this](const ByteBuffer& p) { absorb_payload(p); });
  obs::MetricsRegistry& reg = rv_.udp().sim().metrics();
  const std::string mi = instance();
  c_ops_applied_ = &reg.counter("vpg.ops_applied", mi);
  c_ops_rejected_ = &reg.counter("vpg.ops_rejected", mi);
  c_epochs_pushed_ = &reg.counter("vpg.epochs_pushed", mi);
  c_replicas_merged_ = &reg.counter("vpg.replicas_merged", mi);
  c_can_recoveries_ = &reg.counter("vpg.can_recoveries", mi);
  g_groups_ = &reg.gauge("vpg.groups_known", mi);
  can_refresh_timer_.start();
}

std::string GroupAuthority::instance() const {
  return config_.metrics_instance.empty()
             ? "ga@" + rv_.host_endpoint().ip.to_string()
             : config_.metrics_instance;
}

const GroupEpoch* GroupAuthority::record(GroupId group) const {
  const auto it = records_.find(group);
  return it == records_.end() ? nullptr : &it->second;
}

void GroupAuthority::crash() {
  if (down_) return;
  down_ = true;
  records_.clear();
  member_endpoints_.clear();
  can_payloads_.clear();
  g_groups_->set(0);
  can_refresh_timer_.stop();
  rv_.udp().sim().tracer().instant(obs::Category::kChaos, "vpg.authority_crash",
                                   instance());
}

void GroupAuthority::restart() {
  if (!down_) return;
  down_ = false;
  can_refresh_timer_.start();
  rv_.udp().sim().tracer().instant(obs::Category::kChaos, "vpg.authority_restart",
                                   instance());
}

can::Point GroupAuthority::can_point(GroupId group) const {
  // Deterministic point in the CAN's unit square: two splitmix64 draws
  // seeded by the group id (matches the can_dims=2 fleet convention).
  std::uint64_t state = 0x9E3779B97F4A7C15ull ^ group;
  can::Point p;
  const std::size_t dims = rv_.can_node().zone().dims();
  p.coords.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    p.coords.push_back(static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53);
  }
  return p;
}

void GroupAuthority::store_in_can(const GroupEpoch& epoch) {
  const can::Point point = can_point(epoch.group);
  if (const auto it = can_payloads_.find(epoch.group); it != can_payloads_.end()) {
    rv_.can_node().erase(point, it->second);
  }
  ByteBuffer payload = epoch_to_bytes(epoch);
  can_payloads_[epoch.group] = payload;
  rv_.can_node().store(point, std::move(payload), config_.can_ttl);
}

void GroupAuthority::recover_from_can(GroupId group) {
  c_can_recoveries_->inc();
  rv_.can_node().query(can_point(group), 1, [this](std::vector<can::Item> items) {
    if (down_) return;
    for (const can::Item& item : items) {
      if (const auto epoch = epoch_from_bytes(item.payload)) {
        merge(*epoch, "can");
      }
    }
  });
}

void GroupAuthority::can_refresh_tick() {
  if (down_) return;
  for (const auto& [group, epoch] : records_) store_in_can(epoch);
}

ByteBuffer GroupAuthority::replication_payload() const {
  if (down_ || records_.empty()) return {};
  ByteBuffer out;
  ByteWriter w{out};
  w.u16(static_cast<std::uint16_t>(records_.size()));
  for (const auto& [group, epoch] : records_) encode_epoch(w, epoch);
  return out;
}

void GroupAuthority::absorb_payload(const ByteBuffer& payload) {
  if (down_) return;
  ByteReader r{payload};
  const auto n = r.u16();
  if (!n) return;
  for (std::size_t i = 0; i < *n; ++i) {
    const auto epoch = parse_epoch(r);
    if (!epoch) return;
    merge(*epoch, "shard_ping");
  }
}

void GroupAuthority::merge(const GroupEpoch& epoch, const char* source) {
  GroupEpoch& cur = records_[epoch.group];  // version 0 when newly seen
  if (cur.version >= epoch.version) return;
  cur = epoch;
  c_replicas_merged_->inc();
  g_groups_->set(static_cast<double>(records_.size()));
  log::debug("vpg", "{}: merged group {} v{} from {}", instance(), epoch.group,
             epoch.version, source);
}

void GroupAuthority::on_datagram(const net::Endpoint& from,
                                 const net::UdpDatagram& dgram) {
  if (down_) return;
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto type = overlay::peek_type(dgram);
  if (!type) return;
  switch (*type) {
    case MsgType::kGroupOp: {
      if (const auto msg = parse_group_op(*chunk)) handle_op(from, *msg);
      return;
    }
    case MsgType::kGroupSync: {
      if (const auto msg = parse_group_sync(*chunk)) handle_sync(from, *msg);
      return;
    }
    case MsgType::kGroupReplicate: {
      if (const auto msg = parse_group_replicate(*chunk)) {
        for (const GroupEpoch& e : msg->epochs) merge(e, "replicate");
      }
      return;
    }
    default:
      return;
  }
}

void GroupAuthority::handle_op(const net::Endpoint& from, const GroupOpMsg& msg) {
  member_endpoints_[msg.actor] = from;
  const GroupOpStatus status = apply(msg);
  GroupOpAckMsg ack;
  ack.op_id = msg.op_id;
  ack.status = status;
  if (const auto it = records_.find(msg.group); it != records_.end()) {
    ack.epoch = it->second;
  }
  socket_.send_to(from, encode(ack));
  if (status != GroupOpStatus::kOk) {
    c_ops_rejected_->inc();
    return;
  }
  c_ops_applied_->inc();
  const GroupEpoch& epoch = records_.at(msg.group);
  if (log_ != nullptr) {
    log_->record({rv_.udp().sim().now(), "op", instance(), msg.group, epoch.version,
                  msg.target != 0 ? msg.target : msg.actor, to_string(msg.op), -1.0});
  }
  store_in_can(epoch);
  // Eager replication: the periodic shard-ping payload would carry this
  // anyway, but a revocation shouldn't wait out a ping interval.
  if (!config_.peers.empty()) {
    const net::Chunk rep = encode(GroupReplicateMsg{{epoch}});
    for (const auto& peer : config_.peers) socket_.send_to(peer, rep);
  }
  // The revoked host is deliberately left out of the push; it discovers
  // the revocation on its next sync.
  push_epoch(epoch, msg.op == GroupOp::kRevoke ? msg.target : 0);
}

GroupOpStatus GroupAuthority::apply(const GroupOpMsg& msg) {
  const TimePoint now = rv_.udp().sim().now();
  auto it = records_.find(msg.group);
  if (msg.op == GroupOp::kCreate) {
    if (it != records_.end()) {
      // Idempotent retry by the creator is fine; anyone else collides.
      return it->second.is_member(msg.actor) ? GroupOpStatus::kOk
                                             : GroupOpStatus::kExists;
    }
    GroupEpoch e;
    e.group = msg.group;
    e.version = 1;
    e.changed_at = now;
    e.members.push_back(msg.actor);
    records_.emplace(msg.group, std::move(e));
    g_groups_->set(static_cast<double>(records_.size()));
    return GroupOpStatus::kOk;
  }
  if (it == records_.end()) {
    // Maybe this authority just restarted and the record only survives
    // in CAN; kick a recovery so a retry can succeed.
    recover_from_can(msg.group);
    return GroupOpStatus::kUnknownGroup;
  }
  GroupEpoch& e = it->second;
  if (e.is_revoked(msg.actor)) return GroupOpStatus::kRevoked;
  switch (msg.op) {
    case GroupOp::kCreate:
      return GroupOpStatus::kOk;  // handled above
    case GroupOp::kInvite: {
      if (!e.is_member(msg.actor)) return GroupOpStatus::kNotMember;
      if (e.is_member(msg.target) || e.is_invited(msg.target)) {
        return GroupOpStatus::kOk;  // idempotent
      }
      if (e.is_revoked(msg.target)) return GroupOpStatus::kRevoked;
      insert_sorted(e.invited, msg.target);
      break;
    }
    case GroupOp::kJoin: {
      if (e.is_member(msg.actor)) return GroupOpStatus::kOk;  // idempotent
      if (!e.is_invited(msg.actor)) return GroupOpStatus::kNotInvited;
      erase_sorted(e.invited, msg.actor);
      insert_sorted(e.members, msg.actor);
      break;
    }
    case GroupOp::kLeave: {
      if (!e.is_member(msg.actor)) return GroupOpStatus::kNotMember;
      // A graceful leave is not a tombstone: the host may be re-invited.
      erase_sorted(e.members, msg.actor);
      break;
    }
    case GroupOp::kRevoke: {
      if (!e.is_member(msg.actor)) return GroupOpStatus::kNotMember;
      if (!e.is_member(msg.target) && !e.is_invited(msg.target)) {
        return GroupOpStatus::kNotMember;
      }
      erase_sorted(e.members, msg.target);
      erase_sorted(e.invited, msg.target);
      insert_sorted(e.revoked, msg.target);
      break;
    }
  }
  ++e.version;
  e.changed_at = now;
  return GroupOpStatus::kOk;
}

void GroupAuthority::push_epoch(const GroupEpoch& epoch, std::uint64_t exclude) {
  const net::Chunk chunk = encode(GroupEpochMsg{epoch});
  auto push_to = [&](std::uint64_t host) {
    if (host == exclude) return;
    const auto it = member_endpoints_.find(host);
    if (it == member_endpoints_.end()) return;  // it will sync
    c_epochs_pushed_->inc();
    socket_.send_to(it->second, chunk);
  };
  for (const std::uint64_t host : epoch.members) push_to(host);
  for (const std::uint64_t host : epoch.invited) push_to(host);
}

void GroupAuthority::handle_sync(const net::Endpoint& from, const GroupSyncMsg& msg) {
  member_endpoints_[msg.host] = from;
  for (const auto& [group, version] : msg.held) {
    const auto it = records_.find(group);
    if (it == records_.end()) {
      recover_from_can(group);
      continue;
    }
    if (it->second.version > version) {
      c_epochs_pushed_->inc();
      socket_.send_to(from, encode(GroupEpochMsg{it->second}));
    }
  }
}

}  // namespace wav::vpg
