#include "vpg/group_member.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"

namespace wav::vpg {
namespace {

using overlay::MsgType;

}  // namespace

GroupMember::GroupMember(overlay::HostAgent& agent, Config config)
    : agent_(agent),
      config_(std::move(config)),
      socket_(agent.udp(), config_.port),
      sync_timer_(
          agent.sim(), config_.sync_interval, [this] { sync_tick(); },
          WAV_PROF_CATEGORY("vpg", "sync")) {
  socket_.on_receive([this](const net::Endpoint& from, const net::UdpDatagram& dgram) {
    on_authority_datagram(from, dgram);
  });
  agent_.on_group_datagram([this](std::uint64_t from, const net::Chunk& chunk) {
    on_group_ctrl(from, chunk);
  });
  agent_.on_link_up_group([this](std::uint64_t peer) { kick_handshakes_with(peer); });
  agent_.on_link_down_group([this](std::uint64_t peer) {
    // Link loss is not a membership event: just reset the handshakes so
    // a re-established link renegotiates (the gates already read as
    // closed through the link_established check).
    for (auto& [key, hs] : handshakes_) {
      if (key.second == peer) hs = Handshake{};
    }
  });
  obs::MetricsRegistry& reg = agent_.sim().metrics();
  const std::string mi = instance();
  c_ops_sent_ = &reg.counter("vpg.ops_sent", mi);
  c_ops_failed_ = &reg.counter("vpg.ops_failed", mi);
  c_epochs_adopted_ = &reg.counter("vpg.epochs_adopted", mi);
  c_handshakes_started_ = &reg.counter("vpg.handshakes_started", mi);
  c_handshakes_completed_ = &reg.counter("vpg.handshakes_completed", mi);
  c_gates_closed_ = &reg.counter("vpg.gates_closed", mi);
  c_revoked_deliveries_ = &reg.counter("vpg.revoked_deliveries", mi);
  h_handshake_ms_ = &reg.histogram(
      "vpg.handshake_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}, mi);
  h_revoke_teardown_ms_ = &reg.histogram(
      "vpg.revoke_teardown_ms",
      {10, 50, 100, 500, 1000, 2000, 5000, 10000, 20000, 60000}, mi);
  sync_timer_.start();
}

std::string GroupMember::instance() const {
  return config_.metrics_instance.empty() ? agent_.self_info().name
                                          : config_.metrics_instance;
}

const GroupEpoch* GroupMember::adopted(GroupId group) const {
  const auto it = epochs_.find(group);
  return it == epochs_.end() ? nullptr : &it->second;
}

std::vector<GroupId> GroupMember::active_groups() const {
  std::vector<GroupId> out;
  for (const auto& [group, epoch] : epochs_) {
    if (epoch.is_member(agent_.id())) out.push_back(group);
  }
  return out;
}

// --- membership operations -------------------------------------------

void GroupMember::create_group(GroupId group, OpHandler handler) {
  send_op(GroupOp::kCreate, group, 0, std::move(handler));
}
void GroupMember::invite(GroupId group, std::uint64_t target, OpHandler handler) {
  send_op(GroupOp::kInvite, group, target, std::move(handler));
}
void GroupMember::join(GroupId group, OpHandler handler) {
  send_op(GroupOp::kJoin, group, 0, std::move(handler));
}
void GroupMember::leave(GroupId group, OpHandler handler) {
  send_op(GroupOp::kLeave, group, 0, std::move(handler));
}
void GroupMember::revoke(GroupId group, std::uint64_t target, OpHandler handler) {
  send_op(GroupOp::kRevoke, group, target, std::move(handler));
}

net::Endpoint GroupMember::authority_for(GroupId group, std::size_t cursor) const {
  std::uint64_t state = 0xA5A5A5A5ull ^ group;
  const std::size_t home = static_cast<std::size_t>(splitmix64(state)) %
                           config_.authorities.size();
  return config_.authorities[(home + cursor) % config_.authorities.size()];
}

void GroupMember::send_op(GroupOp op, GroupId group, std::uint64_t target,
                          OpHandler handler) {
  if (config_.authorities.empty()) {
    if (handler) handler(false, GroupOpStatus::kUnknownGroup);
    return;
  }
  const std::uint64_t op_id = next_op_id_++;
  PendingOp& pending = pending_ops_[op_id];
  pending.msg = GroupOpMsg{op_id, op, group, agent_.id(), target};
  pending.handler = std::move(handler);
  // Track the group even before the first ack so sync asks about it.
  epochs_.try_emplace(group);
  transmit_op(op_id);
}

void GroupMember::transmit_op(std::uint64_t op_id) {
  auto& pending = pending_ops_.at(op_id);
  c_ops_sent_->inc();
  socket_.send_to(authority_for(pending.msg.group, pending.cursor),
                  encode(pending.msg));
  const std::uint64_t epoch = ++pending.epoch;
  agent_.sim().schedule_after(config_.op_timeout,
                              WAV_PROF_CATEGORY("vpg", "op_timeout"),
                              [this, op_id, epoch] { op_expired(op_id, epoch); });
}

void GroupMember::op_expired(std::uint64_t op_id, std::uint64_t epoch) {
  const auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end() || it->second.epoch != epoch) return;
  PendingOp& pending = it->second;
  if (++pending.attempts > config_.op_retries || agent_.offline()) {
    c_ops_failed_->inc();
    OpHandler handler = std::move(pending.handler);
    pending_ops_.erase(it);
    if (handler) handler(false, GroupOpStatus::kUnknownGroup);
    return;
  }
  // Ring-walk: the home authority may have crashed with its shard.
  ++pending.cursor;
  transmit_op(op_id);
}

void GroupMember::on_authority_datagram(const net::Endpoint& from,
                                        const net::UdpDatagram& dgram) {
  (void)from;
  if (agent_.offline()) return;
  const auto* chunk = dgram.chunk();
  if (chunk == nullptr) return;
  const auto type = overlay::peek_type(dgram);
  if (!type) return;
  switch (*type) {
    case MsgType::kGroupOpAck: {
      const auto msg = parse_group_op_ack(*chunk);
      if (!msg) return;
      if (msg->epoch.version != 0) adopt(msg->epoch);
      const auto it = pending_ops_.find(msg->op_id);
      if (it == pending_ops_.end()) return;
      // kUnknownGroup is not terminal: a replica that just restarted
      // answers it while a ring sibling still holds the record, so walk
      // the ring like a timeout would. A genuinely unknown group just
      // exhausts the walk and fails through op_expired's budget.
      if (msg->status == GroupOpStatus::kUnknownGroup &&
          it->second.attempts < config_.op_retries) {
        ++it->second.attempts;
        ++it->second.cursor;
        transmit_op(msg->op_id);
        return;
      }
      OpHandler handler = std::move(it->second.handler);
      pending_ops_.erase(it);
      if (handler) handler(msg->status == GroupOpStatus::kOk, msg->status);
      return;
    }
    case MsgType::kGroupEpoch: {
      if (const auto msg = parse_group_epoch(*chunk)) adopt(msg->epoch);
      return;
    }
    default:
      return;
  }
}

// --- epoch adoption and gate lifecycle --------------------------------

void GroupMember::adopt(const GroupEpoch& epoch) {
  GroupEpoch& cur = epochs_[epoch.group];
  if (cur.version >= epoch.version) return;
  const bool revocation_grew = epoch.revoked.size() > cur.revoked.size();
  cur = epoch;
  c_epochs_adopted_->inc();
  if (log_ != nullptr) {
    log_->record({agent_.sim().now(), "epoch_adopted", instance(), epoch.group,
                  epoch.version, 0,
                  epoch.is_revoked(agent_.id()) ? "revoked_me" : "", -1.0});
  }
  // Re-judge every pair gate of this group against the new state.
  const std::uint64_t me = agent_.id();
  for (auto& [key, hs] : handshakes_) {
    if (key.first != epoch.group || hs.state == Handshake::State::kIdle) continue;
    const std::uint64_t peer = key.second;
    const bool banned = !epoch.is_member(me) || !epoch.is_member(peer) ||
                        epoch.is_revoked(me) || epoch.is_revoked(peer);
    if (!banned) continue;
    const bool revocation =
        revocation_grew && (epoch.is_revoked(me) || epoch.is_revoked(peer));
    close_gate(epoch.group, peer, epoch, revocation);
  }
  kick_handshakes();
}

void GroupMember::close_gate(GroupId group, std::uint64_t peer,
                             const GroupEpoch& cause, bool revocation) {
  auto& hs = handshakes_[{group, peer}];
  const bool was_done = hs.state == Handshake::State::kDone;
  hs = Handshake{};
  if (!was_done) return;
  c_gates_closed_->inc();
  // Teardown latency runs from the authority's mutation stamp to this
  // adoption — the full propagation + reaction window the revocation
  // invariant bounds.
  const double latency_ms = to_milliseconds(agent_.sim().now() - cause.changed_at);
  if (revocation) h_revoke_teardown_ms_->observe(latency_ms);
  if (log_ != nullptr) {
    log_->record({agent_.sim().now(), "gate_closed", instance(), group,
                  cause.version, peer, revocation ? "revoke" : "membership",
                  revocation ? latency_ms : -1.0});
  }
  if (on_gate_closed_) on_gate_closed_(group, peer);
  // Physical teardown is initiated by the banned host once it converges
  // (a survivor can no more kill the peer's NAT mapping than any remote
  // can). Until then the survivor's ingress gate is the enforcement
  // point: the ignorant peer's blind-window frames die there with the
  // typed group_isolation reason. A peer that never converges is reaped
  // by the agent's ordinary keepalive machinery.
  const std::uint64_t me = agent_.id();
  const bool self_banned = cause.is_revoked(me) || !cause.is_member(me);
  if (self_banned && !shares_any_group(peer) && agent_.link_established(peer)) {
    agent_.drop_link(peer);
    if (log_ != nullptr) {
      log_->record({agent_.sim().now(), "link_teardown", instance(), group,
                    cause.version, peer, "", -1.0});
    }
  }
}

bool GroupMember::shares_any_group(std::uint64_t peer) const {
  const std::uint64_t me = agent_.id();
  for (const auto& [group, epoch] : epochs_) {
    if (epoch.is_member(me) && epoch.is_member(peer)) return true;
  }
  return false;
}

// --- anti-entropy sync -------------------------------------------------

void GroupMember::sync_tick() {
  if (agent_.offline() || config_.authorities.empty()) return;
  WAV_PROF_SCOPE("vpg", "sync_tick");
  GroupSyncMsg msg;
  msg.host = agent_.id();
  for (const auto& [group, epoch] : epochs_) {
    msg.held.emplace_back(group, epoch.version);
  }
  if (!msg.held.empty()) {
    // Anti-entropy fans out to the whole authority fleet: every replica
    // learns this member's endpoint (so its pushes reach us even when a
    // group's home authority is down) and any replica holding a newer
    // version answers. The fleet is small — a handful of endpoints — so
    // the fan-out is cheaper than stalling convergence on an outage.
    const net::Chunk chunk = encode(msg);
    for (const net::Endpoint& authority : config_.authorities) {
      socket_.send_to(authority, chunk);
    }
  }
  // Restart handshakes that lost a message mid-exchange.
  const TimePoint now = agent_.sim().now();
  for (auto& [key, hs] : handshakes_) {
    if (hs.state == Handshake::State::kRunning &&
        now - hs.last_activity > config_.handshake_stale) {
      hs = Handshake{};
    }
  }
  kick_handshakes();
}

// --- the modeled pair handshake ---------------------------------------

void GroupMember::kick_handshakes() {
  if (agent_.offline()) return;
  const std::uint64_t me = agent_.id();
  for (const auto& [group, epoch] : epochs_) {
    if (!epoch.is_member(me)) continue;
    for (const std::uint64_t peer : epoch.members) {
      if (peer == me || !agent_.link_established(peer)) continue;
      start_handshake(group, peer);
    }
  }
}

void GroupMember::kick_handshakes_with(std::uint64_t peer) {
  if (agent_.offline()) return;
  const std::uint64_t me = agent_.id();
  for (const auto& [group, epoch] : epochs_) {
    if (epoch.is_member(me) && epoch.is_member(peer)) start_handshake(group, peer);
  }
}

void GroupMember::start_handshake(GroupId group, std::uint64_t peer) {
  auto& hs = handshakes_[{group, peer}];
  if (hs.state != Handshake::State::kIdle) return;
  const std::uint64_t me = agent_.id();
  if (me >= peer) return;  // the lower host id initiates; we respond
  hs.state = Handshake::State::kRunning;
  hs.initiator = true;
  hs.round = 1;
  hs.started = agent_.sim().now();
  hs.last_activity = hs.started;
  c_handshakes_started_->inc();
  if (log_ != nullptr) {
    log_->record({hs.started, "handshake_start", instance(), group,
                  epochs_[group].version, peer, "", -1.0});
  }
  send_handshake(group, peer, 1, false);
}

void GroupMember::send_handshake(GroupId group, std::uint64_t peer,
                                 std::uint32_t round, bool reply) {
  // Each message costs the configured CPU time before it leaves — the
  // modeled key-agreement tax. The send re-validates link and
  // membership after the delay; the world may have moved on.
  agent_.sim().schedule_after(
      config_.handshake_cpu, WAV_PROF_CATEGORY("vpg", "handshake_cpu"),
      [this, group, peer, round, reply] {
        if (agent_.offline() || !agent_.link_established(peer)) return;
        const auto it = epochs_.find(group);
        if (it == epochs_.end() || !it->second.is_member(agent_.id()) ||
            !it->second.is_member(peer)) {
          return;
        }
        agent_.send_group_ctrl(
            peer, encode(GroupHandshakeMsg{agent_.id(), peer, group, round, reply}));
      });
}

void GroupMember::on_group_ctrl(std::uint64_t from, const net::Chunk& chunk) {
  if (agent_.offline()) return;
  if (const auto msg = parse_group_handshake(chunk)) {
    if (msg->from_host == from) handle_handshake(from, *msg);
  }
}

void GroupMember::handle_handshake(std::uint64_t from, const GroupHandshakeMsg& msg) {
  const auto it = epochs_.find(msg.group);
  const std::uint64_t me = agent_.id();
  // A handshake across a banned membership is refused silently — the
  // peer's retry path gives up once it adopts the same epoch.
  if (it == epochs_.end() || !it->second.is_member(me) ||
      !it->second.is_member(from) || it->second.is_revoked(from)) {
    return;
  }
  auto& hs = handshakes_[{msg.group, from}];
  const TimePoint now = agent_.sim().now();
  if (!msg.reply) {
    // Responder side (we hold the higher id).
    if (hs.state == Handshake::State::kIdle) {
      hs.state = Handshake::State::kRunning;
      hs.initiator = false;
      hs.started = now;
      c_handshakes_started_->inc();
    }
    if (hs.state == Handshake::State::kDone) {
      // The peer restarted (churned away and back): renegotiate.
      hs.state = Handshake::State::kRunning;
      hs.started = now;
    }
    hs.round = msg.round;
    hs.last_activity = now;
    send_handshake(msg.group, from, msg.round, true);
    if (msg.round >= config_.handshake_rounds) complete_handshake(msg.group, from, hs);
    return;
  }
  // Initiator side: a reply for our current round advances the exchange.
  if (hs.state != Handshake::State::kRunning || !hs.initiator ||
      msg.round != hs.round) {
    return;
  }
  hs.last_activity = now;
  if (hs.round >= config_.handshake_rounds) {
    complete_handshake(msg.group, from, hs);
    return;
  }
  ++hs.round;
  send_handshake(msg.group, from, hs.round, false);
}

void GroupMember::complete_handshake(GroupId group, std::uint64_t peer,
                                     Handshake& hs) {
  hs.state = Handshake::State::kDone;
  hs.last_activity = agent_.sim().now();
  c_handshakes_completed_->inc();
  const double latency_ms = to_milliseconds(agent_.sim().now() - hs.started);
  h_handshake_ms_->observe(latency_ms);
  if (log_ != nullptr) {
    log_->record({agent_.sim().now(), "handshake_done", instance(), group,
                  epochs_[group].version, peer, hs.initiator ? "initiator" : "responder",
                  latency_ms});
  }
}

// --- GroupGate ---------------------------------------------------------

bool GroupMember::gate_open(GroupId group, std::uint64_t peer) const {
  const auto eit = epochs_.find(group);
  if (eit == epochs_.end()) return false;
  const GroupEpoch& e = eit->second;
  const std::uint64_t me = agent_.id();
  if (!e.is_member(me) || !e.is_member(peer) || e.is_revoked(me) ||
      e.is_revoked(peer)) {
    return false;
  }
  const auto hit = handshakes_.find({group, peer});
  if (hit == handshakes_.end() || hit->second.state != Handshake::State::kDone) {
    return false;
  }
  return agent_.link_established(peer);
}

bool GroupMember::egress_allowed(GroupId g, std::uint64_t peer) {
  return gate_open(g, peer);
}

bool GroupMember::ingress_allowed(GroupId g, std::uint64_t peer) {
  return gate_open(g, peer);
}

void GroupMember::broadcast_groups(std::vector<GroupId>& out) {
  const std::uint64_t me = agent_.id();
  for (const auto& [group, epoch] : epochs_) {
    if (epoch.is_member(me)) out.push_back(group);
  }
}

void GroupMember::note_delivered(GroupId g, std::uint64_t peer) {
  // The independent tripwire: a delivery across a membership this host
  // has already adopted as revoked means the gating failed somewhere.
  const auto it = epochs_.find(g);
  if (it == epochs_.end()) return;
  if (it->second.is_revoked(peer) || it->second.is_revoked(agent_.id())) {
    ++revoked_deliveries_;
    c_revoked_deliveries_->inc();
  }
}

std::uint64_t GroupMember::invariant_violations() const {
  std::uint64_t open_revoked_gates = 0;
  const std::uint64_t me = agent_.id();
  for (const auto& [key, hs] : handshakes_) {
    if (hs.state != Handshake::State::kDone) continue;
    const auto it = epochs_.find(key.first);
    if (it == epochs_.end()) continue;
    if (it->second.is_revoked(me) || it->second.is_revoked(key.second)) {
      ++open_revoked_gates;
    }
  }
  return revoked_deliveries_ + open_revoked_gates;
}

}  // namespace wav::vpg
