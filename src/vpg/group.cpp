#include "vpg/group.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"  // json_escape / json_double
#include "overlay/messages.hpp"

namespace wav::vpg {
namespace {

using overlay::MsgType;

ByteBuffer begin(MsgType type) {
  ByteBuffer out;
  out.push_back(static_cast<std::byte>(type));
  return out;
}

std::optional<ByteReader> open(const net::Chunk& chunk, MsgType expect) {
  if (chunk.real.empty() || chunk.real[0] != static_cast<std::byte>(expect)) {
    return std::nullopt;
  }
  ByteReader r{chunk.real};
  (void)r.u8();
  return r;
}

bool sorted_contains(const std::vector<std::uint64_t>& v, std::uint64_t host) {
  return std::binary_search(v.begin(), v.end(), host);
}

void encode_id_list(ByteWriter& w, const std::vector<std::uint64_t>& v) {
  w.u16(static_cast<std::uint16_t>(v.size()));
  for (const std::uint64_t id : v) w.u64(id);
}

bool parse_id_list(ByteReader& r, std::vector<std::uint64_t>& out) {
  const auto n = r.u16();
  if (!n) return false;
  out.reserve(*n);
  for (std::size_t i = 0; i < *n; ++i) {
    const auto id = r.u64();
    if (!id) return false;
    out.push_back(*id);
  }
  return true;
}

}  // namespace

bool GroupEpoch::is_member(std::uint64_t host) const {
  return sorted_contains(members, host);
}
bool GroupEpoch::is_invited(std::uint64_t host) const {
  return sorted_contains(invited, host);
}
bool GroupEpoch::is_revoked(std::uint64_t host) const {
  return sorted_contains(revoked, host);
}

const char* to_string(GroupOp op) noexcept {
  switch (op) {
    case GroupOp::kCreate: return "create";
    case GroupOp::kInvite: return "invite";
    case GroupOp::kJoin: return "join";
    case GroupOp::kLeave: return "leave";
    case GroupOp::kRevoke: return "revoke";
  }
  return "?";
}

const char* to_string(GroupOpStatus status) noexcept {
  switch (status) {
    case GroupOpStatus::kOk: return "ok";
    case GroupOpStatus::kUnknownGroup: return "unknown_group";
    case GroupOpStatus::kExists: return "exists";
    case GroupOpStatus::kNotInvited: return "not_invited";
    case GroupOpStatus::kNotMember: return "not_member";
    case GroupOpStatus::kRevoked: return "revoked";
  }
  return "?";
}

void encode_epoch(ByteWriter& w, const GroupEpoch& epoch) {
  w.u32(epoch.group);
  w.u64(epoch.version);
  w.u64(static_cast<std::uint64_t>(epoch.changed_at.since_start.count()));
  encode_id_list(w, epoch.members);
  encode_id_list(w, epoch.invited);
  encode_id_list(w, epoch.revoked);
}

std::optional<GroupEpoch> parse_epoch(ByteReader& r) {
  GroupEpoch e;
  const auto group = r.u32();
  const auto version = r.u64();
  const auto changed = r.u64();
  if (!group || !version || !changed) return std::nullopt;
  e.group = *group;
  e.version = *version;
  e.changed_at = TimePoint{Duration{static_cast<std::int64_t>(*changed)}};
  if (!parse_id_list(r, e.members)) return std::nullopt;
  if (!parse_id_list(r, e.invited)) return std::nullopt;
  if (!parse_id_list(r, e.revoked)) return std::nullopt;
  return e;
}

net::Chunk encode(const GroupOpMsg& m) {
  ByteBuffer out = begin(MsgType::kGroupOp);
  ByteWriter w{out};
  w.u64(m.op_id);
  w.u8(static_cast<std::uint8_t>(m.op));
  w.u32(m.group);
  w.u64(m.actor);
  w.u64(m.target);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupOpMsg> parse_group_op(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupOp);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto op = r->u8();
  const auto group = r->u32();
  const auto actor = r->u64();
  const auto target = r->u64();
  if (!id || !op || !group || !actor || !target) return std::nullopt;
  if (*op < static_cast<std::uint8_t>(GroupOp::kCreate) ||
      *op > static_cast<std::uint8_t>(GroupOp::kRevoke)) {
    return std::nullopt;
  }
  return GroupOpMsg{*id, static_cast<GroupOp>(*op), *group, *actor, *target};
}

net::Chunk encode(const GroupOpAckMsg& m) {
  ByteBuffer out = begin(MsgType::kGroupOpAck);
  ByteWriter w{out};
  w.u64(m.op_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  encode_epoch(w, m.epoch);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupOpAckMsg> parse_group_op_ack(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupOpAck);
  if (!r) return std::nullopt;
  const auto id = r->u64();
  const auto status = r->u8();
  if (!id || !status) return std::nullopt;
  const auto epoch = parse_epoch(*r);
  if (!epoch) return std::nullopt;
  return GroupOpAckMsg{*id, static_cast<GroupOpStatus>(*status), *epoch};
}

net::Chunk encode(const GroupSyncMsg& m) {
  ByteBuffer out = begin(MsgType::kGroupSync);
  ByteWriter w{out};
  w.u64(m.host);
  w.u16(static_cast<std::uint16_t>(m.held.size()));
  for (const auto& [group, version] : m.held) {
    w.u32(group);
    w.u64(version);
  }
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupSyncMsg> parse_group_sync(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupSync);
  if (!r) return std::nullopt;
  GroupSyncMsg m;
  const auto host = r->u64();
  const auto n = r->u16();
  if (!host || !n) return std::nullopt;
  m.host = *host;
  m.held.reserve(*n);
  for (std::size_t i = 0; i < *n; ++i) {
    const auto group = r->u32();
    const auto version = r->u64();
    if (!group || !version) return std::nullopt;
    m.held.emplace_back(*group, *version);
  }
  return m;
}

net::Chunk encode(const GroupEpochMsg& m) {
  ByteBuffer out = begin(MsgType::kGroupEpoch);
  ByteWriter w{out};
  encode_epoch(w, m.epoch);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupEpochMsg> parse_group_epoch(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupEpoch);
  if (!r) return std::nullopt;
  const auto epoch = parse_epoch(*r);
  if (!epoch) return std::nullopt;
  return GroupEpochMsg{*epoch};
}

net::Chunk encode(const GroupReplicateMsg& m) {
  ByteBuffer out = begin(MsgType::kGroupReplicate);
  ByteWriter w{out};
  w.u16(static_cast<std::uint16_t>(m.epochs.size()));
  for (const GroupEpoch& e : m.epochs) encode_epoch(w, e);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupReplicateMsg> parse_group_replicate(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupReplicate);
  if (!r) return std::nullopt;
  const auto n = r->u16();
  if (!n) return std::nullopt;
  GroupReplicateMsg m;
  m.epochs.reserve(*n);
  for (std::size_t i = 0; i < *n; ++i) {
    const auto e = parse_epoch(*r);
    if (!e) return std::nullopt;
    m.epochs.push_back(*e);
  }
  return m;
}

net::Chunk encode(const GroupHandshakeMsg& m) {
  // (from, to) lead the body so a relay can route the message with
  // overlay::parse_group_route alone.
  ByteBuffer out = begin(MsgType::kGroupHandshake);
  ByteWriter w{out};
  w.u64(m.from_host);
  w.u64(m.to_host);
  w.u32(m.group);
  w.u32(m.round);
  w.u8(m.reply ? 1 : 0);
  return net::Chunk::from_bytes(std::move(out));
}

std::optional<GroupHandshakeMsg> parse_group_handshake(const net::Chunk& c) {
  auto r = open(c, MsgType::kGroupHandshake);
  if (!r) return std::nullopt;
  const auto from = r->u64();
  const auto to = r->u64();
  const auto group = r->u32();
  const auto round = r->u32();
  const auto reply = r->u8();
  if (!from || !to || !group || !round || !reply) return std::nullopt;
  return GroupHandshakeMsg{*from, *to, *group, *round, *reply != 0};
}

ByteBuffer epoch_to_bytes(const GroupEpoch& epoch) {
  ByteBuffer out;
  ByteWriter w{out};
  encode_epoch(w, epoch);
  return out;
}

std::optional<GroupEpoch> epoch_from_bytes(std::span<const std::byte> b) {
  ByteReader r{b};
  return parse_epoch(r);
}

std::string GroupLog::to_jsonl() const {
  std::string out;
  for (const Event& e : events_) {
    out += "{\"ns\":" + std::to_string(e.at.since_start.count());
    out += ",\"kind\":\"" + obs::json_escape(e.kind) + "\"";
    out += ",\"host\":\"" + obs::json_escape(e.host) + "\"";
    out += ",\"group\":" + std::to_string(e.group);
    out += ",\"version\":" + std::to_string(e.version);
    if (e.peer != 0) out += ",\"peer\":" + std::to_string(e.peer);
    if (!e.detail.empty()) out += ",\"detail\":\"" + obs::json_escape(e.detail) + "\"";
    if (e.latency_ms >= 0.0) out += ",\"latency_ms\":" + obs::json_double(e.latency_ms);
    out += "}\n";
  }
  return out;
}

bool GroupLog::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = to_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace wav::vpg
