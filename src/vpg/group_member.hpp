// The host-side half of the private-group subsystem: one GroupMember
// rides next to each HostAgent, owning the host's adopted membership
// epochs, its authority conversations (ops + anti-entropy sync), and the
// modeled per-pair handshake that gates every group tunnel.
//
// The member implements GroupGate, so the WAV-Switch consults it on the
// per-frame path: a gate for (group, peer) is open only while
//   * the member's *adopted* epoch lists both ends as members, and
//   * the pair handshake for that group has completed, and
//   * the HostAgent actually holds an established link to the peer.
// Adopting an epoch that bans a peer (revocation, leave) closes the
// gates synchronously and fires the on_gate_closed callback (wired to
// the switch's group-scoped FDB purge) — that teardown latency, measured
// from the authority's mutation stamp, is vpg.revoke_teardown_ms. The
// banned host itself additionally drops the physical link once it
// converges (when no other shared group still needs it); survivors keep
// the tunnel and let their ingress gates reject the peer's blind-window
// frames with the typed group_isolation reason.
//
// The handshake models the CPU + RTT tax of pairwise key agreement
// (no real crypto): the lower host id initiates, each message costs
// handshake_cpu before it is sent, and the pair exchanges
// handshake_rounds round trips over the established tunnel
// (HostAgent::send_group_ctrl — direct or relayed, whatever the ladder
// produced). Completion latency lands in vpg.handshake_ms.
#pragma once

#include <map>

#include "overlay/host_agent.hpp"
#include "vpg/group.hpp"

namespace wav::vpg {

class GroupMember : public GroupGate {
 public:
  struct Config {
    std::uint16_t port{7900};
    /// Authority endpoints across the fleet. Ops and syncs hash-home to
    /// authorities[h(group) % N] and ring-walk on timeout.
    std::vector<net::Endpoint> authorities{};
    Duration sync_interval{seconds(5)};
    Duration op_timeout{seconds(2)};
    std::uint32_t op_retries{6};
    std::uint32_t handshake_rounds{2};
    Duration handshake_cpu{milliseconds(2)};
    /// A handshake with no progress for this long restarts from round 1
    /// on the next sync tick (covers chunks lost to churn mid-exchange).
    Duration handshake_stale{seconds(3)};
    std::string metrics_instance{};
  };

  using OpHandler = std::function<void(bool ok, GroupOpStatus status)>;
  using GateClosedHandler = std::function<void(GroupId group, std::uint64_t peer)>;

  GroupMember(overlay::HostAgent& agent, Config config);

  void set_log(GroupLog* log) noexcept { log_ = log; }
  /// Fired when a previously open gate closes for membership reasons
  /// (not mere link loss); the switch purges its group FDB entries here.
  void on_gate_closed(GateClosedHandler handler) {
    on_gate_closed_ = std::move(handler);
  }

  // --- membership operations (sent to the group's home authority) ---
  void create_group(GroupId group, OpHandler handler = {});
  void invite(GroupId group, std::uint64_t target, OpHandler handler = {});
  void join(GroupId group, OpHandler handler = {});
  void leave(GroupId group, OpHandler handler = {});
  void revoke(GroupId group, std::uint64_t target, OpHandler handler = {});

  [[nodiscard]] const GroupEpoch* adopted(GroupId group) const;
  /// Groups whose adopted epoch lists this host as a member (sorted).
  [[nodiscard]] std::vector<GroupId> active_groups() const;
  [[nodiscard]] bool gate_open(GroupId group, std::uint64_t peer) const;

  // --- GroupGate (the switch's per-frame checks) ---
  [[nodiscard]] bool egress_allowed(GroupId g, std::uint64_t peer) override;
  [[nodiscard]] bool ingress_allowed(GroupId g, std::uint64_t peer) override;
  void broadcast_groups(std::vector<GroupId>& out) override;
  void note_delivered(GroupId g, std::uint64_t peer) override;

  /// Deliveries across an adopted-revoked membership (the tripwire) plus
  /// any handshake still marked done for a revoked pair — both must be
  /// zero; the chaos InvariantChecker sums this across the fleet.
  [[nodiscard]] std::uint64_t invariant_violations() const;
  [[nodiscard]] std::uint64_t revoked_deliveries() const noexcept {
    return revoked_deliveries_;
  }

  [[nodiscard]] std::uint64_t id() const noexcept { return agent_.id(); }
  [[nodiscard]] overlay::HostAgent& agent() noexcept { return agent_; }

 private:
  struct Handshake {
    enum class State : std::uint8_t { kIdle, kRunning, kDone };
    State state{State::kIdle};
    std::uint32_t round{0};
    bool initiator{false};
    TimePoint started{};
    TimePoint last_activity{};
  };
  struct PendingOp {
    GroupOpMsg msg;
    OpHandler handler;
    std::uint32_t attempts{0};
    std::size_t cursor{0};  // ring-walk offset over authorities
    std::uint64_t epoch{0};  // retires stale timeout events
  };
  using PairKey = std::pair<GroupId, std::uint64_t>;

  void send_op(GroupOp op, GroupId group, std::uint64_t target, OpHandler handler);
  void transmit_op(std::uint64_t op_id);
  void op_expired(std::uint64_t op_id, std::uint64_t epoch);
  [[nodiscard]] net::Endpoint authority_for(GroupId group, std::size_t cursor) const;
  void on_authority_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void on_group_ctrl(std::uint64_t from, const net::Chunk& chunk);
  void adopt(const GroupEpoch& epoch);
  /// Closes the (group, peer) gate for membership reasons; fires the
  /// purge callback if the gate was open, measures teardown when the
  /// epoch change was a revocation, and — only when this host is the
  /// banned end — drops the physical link when no other shared group
  /// still rides it.
  void close_gate(GroupId group, std::uint64_t peer, const GroupEpoch& cause,
                  bool revocation);
  [[nodiscard]] bool shares_any_group(std::uint64_t peer) const;
  void sync_tick();
  void kick_handshakes();
  void kick_handshakes_with(std::uint64_t peer);
  void start_handshake(GroupId group, std::uint64_t peer);
  void send_handshake(GroupId group, std::uint64_t peer, std::uint32_t round,
                      bool reply);
  void handle_handshake(std::uint64_t from, const GroupHandshakeMsg& msg);
  void complete_handshake(GroupId group, std::uint64_t peer, Handshake& hs);
  [[nodiscard]] std::string instance() const;

  overlay::HostAgent& agent_;
  Config config_;
  stack::UdpSocket socket_;
  GroupLog* log_{nullptr};
  GateClosedHandler on_gate_closed_;

  std::map<GroupId, GroupEpoch> epochs_;  // adopted state, by group
  std::map<PairKey, Handshake> handshakes_;
  std::map<std::uint64_t, PendingOp> pending_ops_;
  std::uint64_t next_op_id_{1};
  std::uint64_t revoked_deliveries_{0};
  sim::PeriodicTimer sync_timer_;

  obs::Counter* c_ops_sent_{nullptr};
  obs::Counter* c_ops_failed_{nullptr};
  obs::Counter* c_epochs_adopted_{nullptr};
  obs::Counter* c_handshakes_started_{nullptr};
  obs::Counter* c_handshakes_completed_{nullptr};
  obs::Counter* c_gates_closed_{nullptr};
  obs::Counter* c_revoked_deliveries_{nullptr};
  obs::Histogram* h_handshake_ms_{nullptr};
  obs::Histogram* h_revoke_teardown_ms_{nullptr};
};

}  // namespace wav::vpg
