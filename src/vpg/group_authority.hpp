// The control-plane owner of private-group lifecycle, co-hosted on a
// rendezvous shard (the paper's public-IP tier is the only place a
// membership service can live: every NATed member can always reach it).
//
// One authority instance runs per rendezvous shard. Members hash-home
// their operations to one authority and ring-walk on timeout; writes
// bump the group's epoch version and propagate three ways:
//   1. eager kGroupReplicate to the sibling authorities,
//   2. periodic full-state piggyback on the rendezvous shard-ping
//      channel (survives the eager push being lost),
//   3. the epoch record is stored as a CAN resource at a point derived
//      from the GroupId, so a restarted (or ignorant) authority can
//      recover any group it is asked about even when every sibling that
//      knew it is down.
// Merging is last-writer-wins on the version number, which is safe
// because members route each group's writes to its home authority.
//
// Revocation intentionally excludes the revoked host from the epoch
// push: the revoked member only learns of its fate via its next sync,
// and in that window its frames arrive at survivors whose adopted epoch
// already bans them — the typed group_isolation drops the benches watch.
#pragma once

#include <map>

#include "overlay/rendezvous.hpp"
#include "vpg/group.hpp"

namespace wav::vpg {

class GroupAuthority {
 public:
  struct Config {
    std::uint16_t port{5400};
    /// Sibling authority endpoints (same fleet, other shards) for eager
    /// post-write replication.
    std::vector<net::Endpoint> peers{};
    /// Epoch records re-stored into CAN on this cadence with this TTL,
    /// so records of a dead fleet age out instead of going stale.
    Duration can_refresh{seconds(20)};
    Duration can_ttl{seconds(90)};
    std::string metrics_instance{};
  };

  explicit GroupAuthority(overlay::RendezvousServer& rv);
  GroupAuthority(overlay::RendezvousServer& rv, Config config);

  [[nodiscard]] net::Endpoint endpoint() const {
    return {rv_.host_endpoint().ip, config_.port};
  }

  /// Attaches the --groups-out event collector (nullptr detaches).
  void set_log(GroupLog* log) noexcept { log_ = log; }

  /// Chaos lifecycle, driven alongside the co-hosting rendezvous shard's
  /// own crash/restart: a crash loses every record; recovery arrives via
  /// sibling shard-ping payloads and on-demand CAN lookups.
  void crash();
  void restart();
  [[nodiscard]] bool down() const noexcept { return down_; }

  [[nodiscard]] const GroupEpoch* record(GroupId group) const;
  [[nodiscard]] std::size_t group_count() const noexcept { return records_.size(); }

 private:
  void on_datagram(const net::Endpoint& from, const net::UdpDatagram& dgram);
  void handle_op(const net::Endpoint& from, const GroupOpMsg& msg);
  void handle_sync(const net::Endpoint& from, const GroupSyncMsg& msg);
  /// Applies the op to the group's record. Returns the outcome; on kOk
  /// the record's version has been bumped.
  GroupOpStatus apply(const GroupOpMsg& msg);
  /// Pushes the epoch to every member/invitee endpoint we know, except
  /// `exclude` (the freshly revoked host — see the header comment).
  void push_epoch(const GroupEpoch& epoch, std::uint64_t exclude);
  /// Version-max merge of a replicated or CAN-recovered record.
  void merge(const GroupEpoch& epoch, const char* source);
  void store_in_can(const GroupEpoch& epoch);
  void recover_from_can(GroupId group);
  void can_refresh_tick();
  [[nodiscard]] can::Point can_point(GroupId group) const;
  [[nodiscard]] ByteBuffer replication_payload() const;
  void absorb_payload(const ByteBuffer& payload);
  [[nodiscard]] std::string instance() const;

  overlay::RendezvousServer& rv_;
  Config config_;
  stack::UdpSocket socket_;
  bool down_{false};
  GroupLog* log_{nullptr};

  // std::map keeps replication payloads and CAN refresh order (and thus
  // every downstream export) deterministic.
  std::map<GroupId, GroupEpoch> records_;
  std::map<std::uint64_t, net::Endpoint> member_endpoints_;
  // Last payload stored in CAN per group, so a version bump can erase
  // the stale record instead of leaving both behind.
  std::map<GroupId, ByteBuffer> can_payloads_;
  sim::PeriodicTimer can_refresh_timer_;

  obs::Counter* c_ops_applied_{nullptr};
  obs::Counter* c_ops_rejected_{nullptr};
  obs::Counter* c_epochs_pushed_{nullptr};
  obs::Counter* c_replicas_merged_{nullptr};
  obs::Counter* c_can_recoveries_{nullptr};
  obs::Gauge* g_groups_{nullptr};
};

}  // namespace wav::vpg
