// Base class for everything attached to the physical underlay: end hosts,
// NAT gateways, rendezvous servers and the Internet core. A node owns a
// set of interfaces (link attachment + address), a static routing table,
// and IPv4 forwarding with TTL handling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/link.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace wav::fabric {

class Network;

struct Interface {
  Link* link{nullptr};
  net::Ipv4Address address{};
  net::Ipv4Subnet subnet{};
};

struct NodeStats {
  std::uint64_t rx_packets{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t forwarded{0};
  std::uint64_t dropped_no_route{0};
  std::uint64_t dropped_ttl{0};
};

class Node {
 public:
  Node(Network& network, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] sim::Simulation& sim() const noexcept;

  /// Called by Network when a link is attached; returns the new
  /// interface's index.
  std::size_t attach_interface(Link& link, net::Ipv4Address addr, net::Ipv4Subnet subnet);

  [[nodiscard]] const std::vector<Interface>& interfaces() const noexcept {
    return interfaces_;
  }
  [[nodiscard]] bool owns_address(net::Ipv4Address a) const noexcept;
  /// First interface address, or 0.0.0.0 when detached.
  [[nodiscard]] net::Ipv4Address primary_address() const noexcept;

  /// Adds a route: packets to `dest` leave via interface `iface_index`.
  void add_route(net::Ipv4Subnet dest, std::size_t iface_index);
  void set_default_route(std::size_t iface_index);

  /// Entry point from links. Dispatches to local delivery or forwarding.
  void receive_from_link(net::IpPacket pkt, Link& from);

  /// Injects a locally originated packet into the routing path. Fills a
  /// zero source with the egress interface address. Returns false when no
  /// route exists.
  bool originate(net::IpPacket pkt);

  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

  /// Optional tap observing every packet that arrives at this node (used
  /// by tests and by the tcpdump-style capture in experiments).
  using PacketTap = std::function<void(const net::IpPacket&, const Link&)>;
  void set_packet_tap(PacketTap tap) { tap_ = std::move(tap); }

 protected:
  /// Hook: a packet addressed to this node. Default drops it.
  virtual void deliver_local(const net::IpPacket& pkt, Link& from);

  /// Hook: a packet in transit. Default does TTL decrement + route lookup
  /// + transmit. NAT overrides this to translate first.
  virtual void forward(net::IpPacket pkt, Link& from);

  /// Route lookup (longest prefix, then default); nullptr when no match.
  [[nodiscard]] const Interface* route_lookup(net::Ipv4Address dst) const;

  /// Transmits on a specific interface.
  void transmit(const Interface& out, net::IpPacket pkt);

  NodeStats stats_;

 private:
  Network& network_;
  std::string name_;
  std::vector<Interface> interfaces_;

  struct RouteEntry {
    net::Ipv4Subnet dest;
    std::size_t iface;
  };
  // /32 routes dominate at the Internet core (one per attachment, tens of
  // thousands under churn); they get an O(1) hash lookup, and only the
  // shorter prefixes walk the sorted vector. /32s always beat prefixes on
  // longest-prefix-match, so checking the map first preserves semantics.
  std::unordered_map<net::Ipv4Address, std::size_t> host_routes_;
  std::vector<RouteEntry> routes_;  // kept sorted by descending prefix length
  std::optional<std::size_t> default_route_;
  PacketTap tap_;
};

}  // namespace wav::fabric
