// Point-to-point link with propagation delay, serialization at a finite
// bit rate, a drop-tail queue, optional jitter and random loss.
//
// The queue is modeled analytically: each direction tracks the time its
// transmitter becomes free; a packet whose queueing delay would exceed
// the configured backlog bound is dropped. This yields the bandwidth
// sharing and loss behavior TCP congestion control needs, at O(1) state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace wav::fabric {

class Node;

struct LinkConfig {
  Duration delay{milliseconds(1)};     // one-way propagation
  BitRate rate{kUnlimitedRate};        // serialization rate (0 = infinite)
  Duration max_backlog{milliseconds(100)};  // drop-tail bound on queueing delay
  double loss_probability{0.0};        // independent per-packet wire loss
  Duration jitter_stddev{kZeroDuration};    // Gaussian delay jitter (>= 0 clamp)
  /// Burst delivery: packets arriving within this window of the burst's
  /// first arrival are handed to the receiver together from one scheduled
  /// event (one timer, N packets) instead of one event each. Zero (the
  /// default) keeps per-packet delivery and byte-identical behavior; a
  /// ~packet-serialization-sized window collapses the per-packet event
  /// storm of a saturated 10k-host fabric. Adds at most `batch_window` to
  /// a packet's delivery time; never reorders (FIFO prefix flush).
  Duration batch_window{kZeroDuration};
};

struct LinkStats {
  std::uint64_t delivered_packets{0};
  std::uint64_t delivered_bytes{0};
  std::uint64_t dropped_queue{0};
  std::uint64_t dropped_loss{0};
  std::uint64_t dropped_down{0};  // transmit attempts while administratively down
  std::uint64_t bursts_delivered{0};  // flush events (batching only)
  std::uint64_t max_burst_packets{0};
};

class Link {
 public:
  Link(sim::Simulation& sim, Node& a, Node& b, LinkConfig config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Transmits `pkt` from endpoint `from` to the other endpoint; delivery
  /// happens via Node::receive_from_link after queueing + delay.
  void transmit(const Node& from, net::IpPacket pkt);

  [[nodiscard]] Node& peer(const Node& n) const;
  [[nodiscard]] bool has_endpoint(const Node& n) const noexcept {
    return &n == a_ || &n == b_;
  }

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  /// Live reconfiguration (e.g. the Figure 7 bandwidth sweep uses one
  /// topology and re-shapes the WAN rate).
  void set_rate(BitRate rate) noexcept { config_.rate = rate; }
  void set_delay(Duration delay) noexcept { config_.delay = delay; }
  void set_loss(double p) noexcept { config_.loss_probability = p; }
  void set_jitter(Duration stddev) noexcept { config_.jitter_stddev = stddev; }

  /// Administrative fault injection (cable cut / port down). A down link
  /// drops every transmit attempt; packets already in flight still arrive
  /// (they were on the wire when it was cut).
  void set_down() noexcept { down_ = true; }
  void set_up() noexcept;
  [[nodiscard]] bool down() const noexcept { return down_; }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  ~Link();

 private:
  struct DirectionState {
    TimePoint busy_until{};
    TimePoint last_arrival{};  // FIFO clamp: jitter must not reorder a flow
    /// Packets waiting for the burst flush, in arrival order (the FIFO
    /// clamp keeps arrivals monotonic, so append order is arrival order).
    struct Pending {
      TimePoint arrival{};
      net::IpPacket pkt;
    };
    std::vector<Pending> burst;
    sim::EventId flush_event{};
  };

  void enqueue_burst(DirectionState& dir, Node& dest, TimePoint arrival,
                     net::IpPacket pkt);
  void flush_burst(DirectionState& dir, Node& dest);

  sim::Simulation& sim_;
  Node* a_;
  Node* b_;
  LinkConfig config_;
  DirectionState toward_a_;
  DirectionState toward_b_;
  LinkStats stats_;
  bool down_{false};
};

}  // namespace wav::fabric
