// Container that owns all nodes and links of one simulated internetwork
// and wires them together.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/node.hpp"
#include "sim/simulation.hpp"

namespace wav::fabric {

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }

  /// Creates and owns a node of type T (T must derive from Node).
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  struct Attachment {
    net::Ipv4Address address{};
    net::Ipv4Subnet subnet{};
  };

  /// Creates a link between two nodes and attaches an interface on each.
  Link& connect(Node& a, Attachment a_att, Node& b, Attachment b_att, LinkConfig config);

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes() const noexcept {
    return nodes_;
  }

  /// Finds a node by name; nullptr when absent.
  [[nodiscard]] Node* find(const std::string& name) const noexcept;

 private:
  sim::Simulation& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace wav::fabric
