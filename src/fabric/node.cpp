#include "fabric/node.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fabric/network.hpp"

namespace wav::fabric {

Node::Node(Network& network, std::string name)
    : network_(network), name_(std::move(name)) {}

Node::~Node() = default;

sim::Simulation& Node::sim() const noexcept { return network_.sim(); }

std::size_t Node::attach_interface(Link& link, net::Ipv4Address addr,
                                   net::Ipv4Subnet subnet) {
  interfaces_.push_back(Interface{&link, addr, subnet});
  return interfaces_.size() - 1;
}

bool Node::owns_address(net::Ipv4Address a) const noexcept {
  return std::any_of(interfaces_.begin(), interfaces_.end(),
                     [a](const Interface& i) { return i.address == a; });
}

net::Ipv4Address Node::primary_address() const noexcept {
  return interfaces_.empty() ? net::Ipv4Address{} : interfaces_.front().address;
}

void Node::add_route(net::Ipv4Subnet dest, std::size_t iface_index) {
  if (dest.prefix_len == 32) {
    host_routes_[dest.network] = iface_index;
    return;
  }
  routes_.push_back(RouteEntry{dest, iface_index});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const RouteEntry& x, const RouteEntry& y) {
                     return x.dest.prefix_len > y.dest.prefix_len;
                   });
}

void Node::set_default_route(std::size_t iface_index) { default_route_ = iface_index; }

void Node::receive_from_link(net::IpPacket pkt, Link& from) {
  ++stats_.rx_packets;
  stats_.rx_bytes += pkt.wire_size();
  if (tap_) tap_(pkt, from);

  if (owns_address(pkt.dst) || pkt.dst.is_broadcast()) {
    deliver_local(pkt, from);
    return;
  }
  forward(std::move(pkt), from);
}

bool Node::originate(net::IpPacket pkt) {
  const Interface* out = route_lookup(pkt.dst);
  if (out == nullptr) {
    ++stats_.dropped_no_route;
    log::trace("node", "{}: no route to {}", name_, pkt.dst.to_string());
    return false;
  }
  if (pkt.src.is_zero()) pkt.src = out->address;
  transmit(*out, std::move(pkt));
  return true;
}

void Node::deliver_local(const net::IpPacket& pkt, Link& from) {
  (void)pkt;
  (void)from;
  log::trace("node", "{}: packet to self dropped (no local stack)", name_);
}

void Node::forward(net::IpPacket pkt, Link& from) {
  (void)from;
  if (pkt.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  pkt.ttl = static_cast<std::uint8_t>(pkt.ttl - 1);
  const Interface* out = route_lookup(pkt.dst);
  if (out == nullptr) {
    ++stats_.dropped_no_route;
    log::trace("node", "{}: cannot forward to {}", name_, pkt.dst.to_string());
    return;
  }
  ++stats_.forwarded;
  transmit(*out, std::move(pkt));
}

const Interface* Node::route_lookup(net::Ipv4Address dst) const {
  if (const auto it = host_routes_.find(dst); it != host_routes_.end()) {
    return &interfaces_[it->second];
  }
  for (const auto& r : routes_) {
    if (r.dest.contains(dst)) return &interfaces_[r.iface];
  }
  if (default_route_) return &interfaces_[*default_route_];
  return nullptr;
}

void Node::transmit(const Interface& out, net::IpPacket pkt) {
  ++stats_.tx_packets;
  stats_.tx_bytes += pkt.wire_size();
  out.link->transmit(*this, std::move(pkt));
}

}  // namespace wav::fabric
