#include "fabric/link.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "fabric/node.hpp"
#include "obs/flow.hpp"
#include "obs/profiler.hpp"

namespace wav::fabric {

namespace {

/// Wire-level drop attribution: links never add hops for forwarded
/// packets (they are pure delay), but a sampled flow must learn where a
/// packet died.
void note_flow_drop(sim::Simulation& sim, const net::IpPacket& pkt,
                    const Node& from, const Node& dest, obs::DropReason reason) {
  if (const net::FlowContext* fc = obs::flow_of(pkt)) {
    sim.flows().dropped(*fc, obs::HopComponent::kLink,
                        from.name() + ">" + dest.name(), reason);
  }
}

}  // namespace

Link::Link(sim::Simulation& sim, Node& a, Node& b, LinkConfig config)
    : sim_(sim), a_(&a), b_(&b), config_(config) {}

Link::~Link() {
  // Pending burst flushes capture `this`; they must not outlive the link.
  if (toward_a_.flush_event.valid()) sim_.cancel(toward_a_.flush_event);
  if (toward_b_.flush_event.valid()) sim_.cancel(toward_b_.flush_event);
}

Node& Link::peer(const Node& n) const {
  assert(has_endpoint(n));
  return &n == a_ ? *b_ : *a_;
}

void Link::set_up() noexcept {
  if (!down_) return;
  down_ = false;
  // A revived port starts with an empty transmit queue: the analytic
  // backlog accumulated before the cut must not delay post-heal traffic.
  const TimePoint now = sim_.now();
  toward_a_.busy_until = std::min(toward_a_.busy_until, now);
  toward_b_.busy_until = std::min(toward_b_.busy_until, now);
}

void Link::transmit(const Node& from, net::IpPacket pkt) {
  assert(has_endpoint(from));
  if (down_) {
    ++stats_.dropped_down;
    note_flow_drop(sim_, pkt, from, peer(from), obs::DropReason::kLinkDown);
    return;
  }
  DirectionState& dir = (&from == a_) ? toward_b_ : toward_a_;
  Node& dest = peer(from);

  const TimePoint now = sim_.now();
  const std::uint64_t size = pkt.wire_size();

  // Drop-tail queue: refuse packets whose queueing delay would exceed the
  // backlog bound.
  const TimePoint start = std::max(now, dir.busy_until);
  if (start - now > config_.max_backlog) {
    ++stats_.dropped_queue;
    note_flow_drop(sim_, pkt, from, dest, obs::DropReason::kLinkQueue);
    log::trace("link", "queue drop {} -> {} ({} B)", from.name(), dest.name(), size);
    return;
  }
  const Duration tx_time = config_.rate.transmit_time(size);
  dir.busy_until = start + tx_time;

  // Random wire loss (applied after consuming serialization time, like a
  // corrupted frame on a real wire).
  if (config_.loss_probability > 0.0 && sim_.rng().chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    note_flow_drop(sim_, pkt, from, dest, obs::DropReason::kWireLoss);
    return;
  }

  Duration delay = config_.delay;
  if (config_.jitter_stddev > kZeroDuration) {
    const double jitter_s =
        sim_.rng().normal(0.0, to_seconds(config_.jitter_stddev));
    delay += seconds_f(std::max(0.0, to_seconds(delay) + jitter_s)) - delay;
  }

  // Jitter varies delay but a link is a FIFO pipe: clamp arrivals to be
  // monotonic so jitter never reorders packets within the direction.
  const TimePoint arrival = std::max(dir.busy_until + delay, dir.last_arrival);
  dir.last_arrival = arrival;
  ++stats_.delivered_packets;
  stats_.delivered_bytes += size;

  if (config_.batch_window > kZeroDuration) {
    enqueue_burst(dir, dest, arrival, std::move(pkt));
    return;
  }
  sim_.schedule_at(arrival, WAV_PROF_CATEGORY("link", "deliver"),
                   [this, &dest, pkt = std::move(pkt)]() mutable {
    dest.receive_from_link(std::move(pkt), *this);
  });
}

void Link::enqueue_burst(DirectionState& dir, Node& dest, TimePoint arrival,
                         net::IpPacket pkt) {
  if (dir.burst.empty()) {
    // One timer per burst, opened by the first packet: the flush fires a
    // batch window after that packet's arrival and hands over every
    // packet whose arrival falls inside the window.
    dir.flush_event =
        sim_.schedule_at(arrival + config_.batch_window,
                         WAV_PROF_CATEGORY("link", "deliver_burst"),
                         [this, &dir, &dest] { flush_burst(dir, dest); });
  }
  dir.burst.push_back(DirectionState::Pending{arrival, std::move(pkt)});
}

void Link::flush_burst(DirectionState& dir, Node& dest) {
  dir.flush_event = sim::EventId{};
  // Deliver the FIFO prefix that has arrived by now; later packets (the
  // analytic queue can stretch arrivals well past the window) stay and
  // re-open a burst anchored to the first of them. The prefix moves out
  // before any receive runs, so receivers may transmit back into this
  // link reentrantly.
  const TimePoint now = sim_.now();
  std::size_t ready = 0;
  while (ready < dir.burst.size() && dir.burst[ready].arrival <= now) ++ready;
  std::vector<DirectionState::Pending> prefix;
  prefix.reserve(ready);
  std::move(dir.burst.begin(), dir.burst.begin() + static_cast<std::ptrdiff_t>(ready),
            std::back_inserter(prefix));
  dir.burst.erase(dir.burst.begin(),
                  dir.burst.begin() + static_cast<std::ptrdiff_t>(ready));
  if (!dir.burst.empty()) {
    dir.flush_event =
        sim_.schedule_at(dir.burst.front().arrival + config_.batch_window,
                         WAV_PROF_CATEGORY("link", "deliver_burst"),
                         [this, &dir, &dest] { flush_burst(dir, dest); });
  }
  ++stats_.bursts_delivered;
  stats_.max_burst_packets = std::max(stats_.max_burst_packets,
                                      static_cast<std::uint64_t>(prefix.size()));
  for (DirectionState::Pending& p : prefix) {
    dest.receive_from_link(std::move(p.pkt), *this);
  }
}

}  // namespace wav::fabric
