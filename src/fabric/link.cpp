#include "fabric/link.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "fabric/node.hpp"
#include "obs/flow.hpp"
#include "obs/profiler.hpp"

namespace wav::fabric {

namespace {

/// Wire-level drop attribution: links never add hops for forwarded
/// packets (they are pure delay), but a sampled flow must learn where a
/// packet died.
void note_flow_drop(sim::Simulation& sim, const net::IpPacket& pkt,
                    const Node& from, const Node& dest, obs::DropReason reason) {
  if (const net::FlowContext* fc = obs::flow_of(pkt)) {
    sim.flows().dropped(*fc, obs::HopComponent::kLink,
                        from.name() + ">" + dest.name(), reason);
  }
}

}  // namespace

Link::Link(sim::Simulation& sim, Node& a, Node& b, LinkConfig config)
    : sim_(sim), a_(&a), b_(&b), config_(config) {}

Node& Link::peer(const Node& n) const {
  assert(has_endpoint(n));
  return &n == a_ ? *b_ : *a_;
}

void Link::set_up() noexcept {
  if (!down_) return;
  down_ = false;
  // A revived port starts with an empty transmit queue: the analytic
  // backlog accumulated before the cut must not delay post-heal traffic.
  const TimePoint now = sim_.now();
  toward_a_.busy_until = std::min(toward_a_.busy_until, now);
  toward_b_.busy_until = std::min(toward_b_.busy_until, now);
}

void Link::transmit(const Node& from, net::IpPacket pkt) {
  assert(has_endpoint(from));
  if (down_) {
    ++stats_.dropped_down;
    note_flow_drop(sim_, pkt, from, peer(from), obs::DropReason::kLinkDown);
    return;
  }
  DirectionState& dir = (&from == a_) ? toward_b_ : toward_a_;
  Node& dest = peer(from);

  const TimePoint now = sim_.now();
  const std::uint64_t size = pkt.wire_size();

  // Drop-tail queue: refuse packets whose queueing delay would exceed the
  // backlog bound.
  const TimePoint start = std::max(now, dir.busy_until);
  if (start - now > config_.max_backlog) {
    ++stats_.dropped_queue;
    note_flow_drop(sim_, pkt, from, dest, obs::DropReason::kLinkQueue);
    log::trace("link", "queue drop {} -> {} ({} B)", from.name(), dest.name(), size);
    return;
  }
  const Duration tx_time = config_.rate.transmit_time(size);
  dir.busy_until = start + tx_time;

  // Random wire loss (applied after consuming serialization time, like a
  // corrupted frame on a real wire).
  if (config_.loss_probability > 0.0 && sim_.rng().chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    note_flow_drop(sim_, pkt, from, dest, obs::DropReason::kWireLoss);
    return;
  }

  Duration delay = config_.delay;
  if (config_.jitter_stddev > kZeroDuration) {
    const double jitter_s =
        sim_.rng().normal(0.0, to_seconds(config_.jitter_stddev));
    delay += seconds_f(std::max(0.0, to_seconds(delay) + jitter_s)) - delay;
  }

  // Jitter varies delay but a link is a FIFO pipe: clamp arrivals to be
  // monotonic so jitter never reorders packets within the direction.
  const TimePoint arrival = std::max(dir.busy_until + delay, dir.last_arrival);
  dir.last_arrival = arrival;
  ++stats_.delivered_packets;
  stats_.delivered_bytes += size;

  sim_.schedule_at(arrival, WAV_PROF_CATEGORY("link", "deliver"),
                   [this, &dest, pkt = std::move(pkt)]() mutable {
    dest.receive_from_link(std::move(pkt), *this);
  });
}

}  // namespace wav::fabric
