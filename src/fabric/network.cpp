#include "fabric/network.hpp"

namespace wav::fabric {

Link& Network::connect(Node& a, Attachment a_att, Node& b, Attachment b_att,
                       LinkConfig config) {
  auto link = std::make_unique<Link>(sim_, a, b, config);
  Link& ref = *link;
  links_.push_back(std::move(link));
  a.attach_interface(ref, a_att.address, a_att.subnet);
  b.attach_interface(ref, b_att.address, b_att.subnet);
  return ref;
}

Node* Network::find(const std::string& name) const noexcept {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

}  // namespace wav::fabric
