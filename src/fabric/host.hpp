// An end host on the physical underlay: a Node whose locally addressed
// packets are delivered into a protocol stack via the IpLayer seam.
#pragma once

#include "fabric/node.hpp"
#include "stack/ip_layer.hpp"

namespace wav::fabric {

class HostNode : public Node, public stack::IpLayer {
 public:
  HostNode(Network& network, std::string name);

  bool send_ip(net::IpPacket pkt) override;
  [[nodiscard]] net::Ipv4Address ip_address() const override { return primary_address(); }

 protected:
  void deliver_local(const net::IpPacket& pkt, Link& from) override;
};

}  // namespace wav::fabric
