#include "fabric/internet.hpp"

#include <cassert>

#include "common/log.hpp"
#include "fabric/network.hpp"
#include "obs/flow.hpp"
#include "obs/profiler.hpp"

namespace wav::fabric {

namespace {

void note_flow_drop(sim::Simulation& sim, const net::IpPacket& pkt,
                    const std::string& instance, obs::DropReason reason) {
  if (const net::FlowContext* fc = obs::flow_of(pkt)) {
    sim.flows().dropped(*fc, obs::HopComponent::kInternet, instance, reason);
  }
}

}  // namespace

InternetNode::InternetNode(Network& network, std::string name)
    : Node(network, std::move(name)) {
  c_partition_drops_ = &sim().metrics().counter("internet.partition_drops", this->name());
}

void InternetNode::set_path(std::size_t iface_a, std::size_t iface_b, PathSpec spec) {
  paths_[key(iface_a, iface_b)] = spec;
}

void InternetNode::set_blocked(std::size_t iface_a, std::size_t iface_b, bool blocked) {
  if (blocked) {
    blocked_pairs_.insert(key(iface_a, iface_b));
  } else {
    blocked_pairs_.erase(key(iface_a, iface_b));
  }
}

PathSpec InternetNode::path(std::size_t iface_a, std::size_t iface_b) const {
  const auto it = paths_.find(key(iface_a, iface_b));
  return it == paths_.end() ? PathSpec{} : it->second;
}

std::size_t InternetNode::iface_index_of(const Link& link) {
  const auto& ifaces = interfaces();
  if (iface_by_link_.size() != ifaces.size()) {
    iface_by_link_.clear();
    iface_by_link_.reserve(ifaces.size());
    for (std::size_t i = 0; i < ifaces.size(); ++i) {
      iface_by_link_.emplace(ifaces[i].link, i);
    }
  }
  const auto it = iface_by_link_.find(&link);
  assert(it != iface_by_link_.end() && "packet arrived over an unattached link");
  return it == iface_by_link_.end() ? 0 : it->second;
}

void InternetNode::forward(net::IpPacket pkt, Link& from) {
  if (pkt.ttl <= 1) {
    ++stats_.dropped_ttl;
    note_flow_drop(sim(), pkt, name(), obs::DropReason::kTtlExpired);
    return;
  }
  pkt.ttl = static_cast<std::uint8_t>(pkt.ttl - 1);

  const Interface* out = route_lookup(pkt.dst);
  if (out == nullptr) {
    ++stats_.dropped_no_route;
    note_flow_drop(sim(), pkt, name(), obs::DropReason::kNoRoute);
    log::trace("internet", "unroutable dst {}", pkt.dst.to_string());
    return;
  }
  const std::size_t in_idx = iface_index_of(from);
  // route_lookup returns a pointer into the contiguous interface table,
  // so the index is pointer arithmetic, not a scan.
  const std::size_t out_idx =
      static_cast<std::size_t>(out - interfaces().data());

  if (blocked_pairs_.contains(key(in_idx, out_idx))) {
    ++partition_drops_;
    c_partition_drops_->inc();
    note_flow_drop(sim(), pkt, name(), obs::DropReason::kPartition);
    return;
  }

  const PathSpec spec = path(in_idx, out_idx);
  if (spec.loss_probability > 0.0 && sim().rng().chance(spec.loss_probability)) {
    note_flow_drop(sim(), pkt, name(), obs::DropReason::kWireLoss);
    return;
  }

  Duration extra = spec.one_way;
  if (spec.jitter_stddev > kZeroDuration) {
    const double jitter_s = sim().rng().normal(0.0, to_seconds(spec.jitter_stddev));
    extra = seconds_f(std::max(0.0, to_seconds(extra) + jitter_s));
  }

  ++stats_.forwarded;
  if (extra <= kZeroDuration) {
    transmit(*out, std::move(pkt));
    return;
  }
  // FIFO clamp: jittered core delay must not reorder a directed flow.
  const std::uint64_t dir_key = (static_cast<std::uint64_t>(in_idx) << 32) | out_idx;
  TimePoint depart = sim().now() + extra;
  TimePoint& last = last_forward_[dir_key];
  if (depart < last) depart = last;
  last = depart;
  sim().schedule_at(depart, WAV_PROF_CATEGORY("internet", "forward"),
                    [this, out, pkt = std::move(pkt)]() mutable {
    transmit(*out, std::move(pkt));
  });
}

}  // namespace wav::fabric
