#include "fabric/host.hpp"

#include "fabric/network.hpp"

namespace wav::fabric {

HostNode::HostNode(Network& network, std::string name)
    : Node(network, std::move(name)), stack::IpLayer(network.sim()) {}

bool HostNode::send_ip(net::IpPacket pkt) { return originate(std::move(pkt)); }

void HostNode::deliver_local(const net::IpPacket& pkt, Link& from) {
  (void)from;
  deliver_up(pkt);
}

}  // namespace wav::fabric
