#include "fabric/wan.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/log.hpp"

namespace wav::fabric {
namespace {

net::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return net::Ipv4Address::from_octets(a, b, c, d);
}

}  // namespace

Wan::Wan(Network& network)
    : network_(network), internet_(&network.add_node<InternetNode>("internet")) {}

std::size_t Wan::attach_to_core(Node& node, net::Ipv4Address node_addr, BitRate rate,
                                Duration delay) {
  LinkConfig cfg;
  cfg.rate = rate;
  cfg.delay = delay;
  cfg.max_backlog = milliseconds(150);
  const auto core_addr = ip(10, 255, static_cast<std::uint8_t>(next_core_ip_ >> 8),
                            static_cast<std::uint8_t>(next_core_ip_ & 0xFF));
  ++next_core_ip_;
  Link& link = network_.connect(node, {node_addr, {node_addr, 32}}, *internet_,
                                {core_addr, {core_addr, 32}}, cfg);
  const std::size_t iface = internet_->interfaces().size() - 1;
  internet_->add_route({node_addr, 32}, iface);
  (void)link;
  return iface;
}

Wan::Site& Wan::add_site(const SiteConfig& config) {
  const auto idx = static_cast<std::uint8_t>(next_site_index_++);
  Site site;
  site.name = config.name;
  site.cpu_gflops = config.cpu_gflops;
  site.access_rate = config.access_rate;

  LinkConfig lan_cfg;
  lan_cfg.rate = config.lan_rate;
  lan_cfg.delay = microseconds(50);
  lan_cfg.max_backlog = milliseconds(50);

  if (config.public_hosts) {
    for (std::size_t h = 0; h < config.host_count; ++h) {
      auto& host = network_.add_node<HostNode>(config.name + "-h" +
                                               std::to_string(h + 1));
      const auto addr = ip(100, 66, idx, static_cast<std::uint8_t>(h + 2));
      const std::size_t core_iface =
          attach_to_core(host, addr, config.access_rate, config.access_delay);
      host.set_default_route(0);
      site.hosts.push_back(&host);
      site.host_core_ifaces.push_back(core_iface);
      core_ifaces_[config.name].push_back(core_iface);
      access_links_[config.name].push_back(host.interfaces()[0].link);
    }
  } else {
    auto& gw = network_.add_node<nat::NatGateway>(config.name + "-gw", config.nat);
    const auto lan_subnet = net::Ipv4Subnet{ip(192, 168, idx, 0), 24};
    for (std::size_t h = 0; h < config.host_count; ++h) {
      auto& host = network_.add_node<HostNode>(config.name + "-h" +
                                               std::to_string(h + 1));
      const auto host_addr = ip(192, 168, idx, static_cast<std::uint8_t>(h + 2));
      network_.connect(host, {host_addr, lan_subnet}, gw, {ip(192, 168, idx, 1), lan_subnet},
                       lan_cfg);
      host.set_default_route(0);
      gw.add_route({host_addr, 32}, gw.interfaces().size() - 1);
      site.hosts.push_back(&host);
    }
    const auto public_addr = ip(100, 64, idx, 1);
    site.core_iface = attach_to_core(gw, public_addr, config.access_rate,
                                     config.access_delay);
    gw.set_wan_interface(gw.interfaces().size() - 1);
    site.gateway = &gw;
    core_ifaces_[config.name].push_back(site.core_iface);
    access_links_[config.name].push_back(
        gw.interfaces()[gw.interfaces().size() - 1].link);
  }

  sites_.push_back(std::move(site));
  return sites_.back();
}

HostNode& Wan::add_public_host(const std::string& name, BitRate rate, Duration delay) {
  auto& host = network_.add_node<HostNode>(name);
  // Public addresses spread over 100.70.0.0/16 (low octet first, so the
  // first 255 hosts keep the historical 100.70.0.x addresses). A single
  // octet caps the fleet at 255 before silently reusing addresses —
  // churn populations run to 10k public hosts.
  const std::size_t idx = next_public_index_++;
  if (idx > 0xFFFF) {
    throw std::runtime_error("Wan: public host address space exhausted");
  }
  const auto addr = ip(100, 70, static_cast<std::uint8_t>(idx >> 8),
                       static_cast<std::uint8_t>(idx & 0xFF));
  const std::size_t core_iface = attach_to_core(host, addr, rate, delay);
  host.set_default_route(0);
  public_hosts_[name] = &host;
  core_ifaces_[name].push_back(core_iface);
  access_links_[name].push_back(host.interfaces()[0].link);
  return host;
}

void Wan::set_path(const std::string& a, const std::string& b, PairPath path) {
  const auto ia = core_ifaces_.find(a);
  const auto ib = core_ifaces_.find(b);
  if (ia == core_ifaces_.end() || ib == core_ifaces_.end()) {
    throw std::invalid_argument("unknown WAN attachment: " + a + " or " + b);
  }
  PathSpec spec;
  spec.one_way = path.one_way;
  spec.jitter_stddev = path.jitter_stddev;
  spec.loss_probability = path.loss;
  for (const std::size_t fa : ia->second) {
    for (const std::size_t fb : ib->second) {
      internet_->set_path(fa, fb, spec);
    }
  }
}

void Wan::set_default_paths(PairPath path) {
  const auto names = attachment_names();
  PathSpec spec;
  spec.one_way = path.one_way;
  spec.jitter_stddev = path.jitter_stddev;
  spec.loss_probability = path.loss;
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      for (const std::size_t fa : core_ifaces_[names[i]]) {
        for (const std::size_t fb : core_ifaces_[names[j]]) {
          // Only fill pairs that are still at the zero default.
          if (internet_->path(fa, fb).one_way == kZeroDuration) {
            internet_->set_path(fa, fb, spec);
          }
        }
      }
    }
  }
}

Wan::Site* Wan::site(const std::string& name) {
  for (auto& s : sites_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

HostNode* Wan::public_host(const std::string& name) {
  const auto it = public_hosts_.find(name);
  return it == public_hosts_.end() ? nullptr : it->second;
}

std::vector<std::string> Wan::attachment_names() const {
  std::vector<std::string> names;
  names.reserve(core_ifaces_.size());
  for (const auto& [name, ifaces] : core_ifaces_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Wan::set_site_rate(const std::string& name, BitRate rate) {
  const auto it = access_links_.find(name);
  if (it == access_links_.end()) {
    throw std::invalid_argument("unknown WAN attachment: " + name);
  }
  for (Link* link : it->second) link->set_rate(rate);
}

const std::vector<Link*>& Wan::access_links(const std::string& name) const {
  const auto it = access_links_.find(name);
  if (it == access_links_.end()) {
    throw std::invalid_argument("unknown WAN attachment: " + name);
  }
  return it->second;
}

void Wan::set_partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b, bool blocked) {
  for (const auto& a : group_a) {
    const auto ia = core_ifaces_.find(a);
    if (ia == core_ifaces_.end()) {
      throw std::invalid_argument("unknown WAN attachment: " + a);
    }
    for (const auto& b : group_b) {
      const auto ib = core_ifaces_.find(b);
      if (ib == core_ifaces_.end()) {
        throw std::invalid_argument("unknown WAN attachment: " + b);
      }
      for (const std::size_t fa : ia->second) {
        for (const std::size_t fb : ib->second) {
          internet_->set_blocked(fa, fb, blocked);
        }
      }
    }
  }
}

// --- paper testbed ----------------------------------------------------------

double paper_rtt_ms(const std::string& a, const std::string& b) {
  using P = PaperTestbed;
  auto key = [](const std::string& x, const std::string& y) { return x + "|" + y; };
  static const std::unordered_map<std::string, double> kMeasured = {
      // Table I (ping latency from HKU) and Table II (SIAT-PU).
      {key(P::kHku, P::kPu), 30.2},      {key(P::kHku, P::kSinica), 24.8},
      {key(P::kHku, P::kAist), 75.8},    {key(P::kHku, P::kSdsc), 217.2},
      {key(P::kHku, P::kOffCam), 4.4},   {key(P::kHku, P::kSiat), 74.2},
      {key(P::kSiat, P::kPu), 219.4},
      // Estimated pairs (metric closure via HKU, except PU-Sinica which
      // are both in Taipei).
      {key(P::kPu, P::kSinica), 8.0},
      {key(P::kSiat, P::kSinica), 99.0},  // matches Table III's 100.3 ms
      {key(P::kSiat, P::kOffCam), 78.6},  {key(P::kSiat, P::kAist), 150.0},
      {key(P::kSiat, P::kSdsc), 291.4},   {key(P::kAist, P::kPu), 106.0},
      {key(P::kAist, P::kSinica), 100.6}, {key(P::kAist, P::kSdsc), 293.0},
      {key(P::kSdsc, P::kPu), 247.4},     {key(P::kSdsc, P::kSinica), 242.0},
      {key(P::kOffCam, P::kPu), 34.6},    {key(P::kOffCam, P::kSinica), 29.2},
      {key(P::kOffCam, P::kAist), 80.2},  {key(P::kOffCam, P::kSdsc), 221.6},
  };
  if (a == b) return 0.5;
  if (const auto it = kMeasured.find(key(a, b)); it != kMeasured.end()) return it->second;
  if (const auto it = kMeasured.find(key(b, a)); it != kMeasured.end()) return it->second;
  throw std::invalid_argument("no RTT entry for " + a + " - " + b);
}

void build_paper_testbed(Wan& wan) {
  using P = PaperTestbed;
  struct SiteSpec {
    const char* name;
    std::size_t hosts;
    double access_mbps;  // calibrated so per-pair physical bandwidth
                         // reproduces the paper's measurements (Table V)
    double cpu_gflops;
  };
  // Access rates: the pairwise bottleneck is min(access_a, access_b);
  // HKU's campus uplink is fast, so each remote site's access rate is
  // set to the HKU-<site> physical bandwidth implied by the paper.
  static constexpr SiteSpec kSites[] = {
      {P::kHku, 2, 95.0, 4.0},   {P::kOffCam, 1, 90.0, 2.8}, {P::kSiat, 1, 23.0, 2.8},
      {P::kPu, 1, 45.0, 9.6},    {P::kSinica, 1, 47.0, 9.0}, {P::kAist, 1, 60.0, 3.7},
      {P::kSdsc, 1, 30.0, 6.4},
  };

  for (const auto& spec : kSites) {
    SiteConfig cfg;
    cfg.name = spec.name;
    cfg.host_count = spec.hosts;
    cfg.access_rate = megabits_per_sec(spec.access_mbps);
    cfg.access_delay = microseconds(200);
    cfg.lan_rate = megabits_per_sec(100);  // 2011 campus fast Ethernet
    cfg.cpu_gflops = spec.cpu_gflops;
    cfg.nat.type = nat::NatType::kPortRestrictedCone;
    wan.add_site(cfg);
  }

  // One rendezvous server with a public IP in Hong Kong (paper §III),
  // plus the STUN alternate address host it needs.
  wan.add_public_host("rendezvous");
  wan.add_public_host("stun-alt");

  const std::vector<std::string> names = {P::kHku, P::kOffCam, P::kSiat,  P::kPu,
                                          P::kSinica, P::kAist, P::kSdsc};
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      PairPath path;
      path.one_way = milliseconds_f(paper_rtt_ms(names[i], names[j]) / 2.0 - 0.4);
      path.jitter_stddev = milliseconds_f(0.3);
      wan.set_path(names[i], names[j], path);
    }
    // Rendezvous/STUN sit next to HKU: reuse the HKU RTT for each site.
    PairPath rv;
    const double rtt = names[i] == P::kHku ? 0.8 : paper_rtt_ms(P::kHku, names[i]);
    rv.one_way = milliseconds_f(std::max(0.1, rtt / 2.0 - 0.4));
    rv.jitter_stddev = milliseconds_f(0.2);
    wan.set_path(names[i], "rendezvous", rv);
    wan.set_path(names[i], "stun-alt", rv);
  }
  PairPath local;
  local.one_way = microseconds(200);
  wan.set_path("rendezvous", "stun-alt", local);
}

}  // namespace wav::fabric
