// The Internet core of the simulated WAN.
//
// Site gateways attach to the core via short access links that carry each
// site's bandwidth cap; the core itself adds per-site-pair propagation
// delay, jitter and loss. This decomposition lets us reproduce the
// paper's testbed, where pairwise RTTs are *not* additive (HKU-SIAT
// 74.2 ms + HKU-PU 30.2 ms, yet SIAT-PU is 219.4 ms — Table II).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "fabric/node.hpp"

namespace wav::fabric {

struct PathSpec {
  Duration one_way{kZeroDuration};  // extra core delay per direction
  Duration jitter_stddev{kZeroDuration};
  double loss_probability{0.0};
};

class InternetNode : public Node {
 public:
  InternetNode(Network& network, std::string name);

  /// Declares the path characteristics between the sites reachable via
  /// two of this node's interfaces (symmetric).
  void set_path(std::size_t iface_a, std::size_t iface_b, PathSpec spec);

  [[nodiscard]] PathSpec path(std::size_t iface_a, std::size_t iface_b) const;

  /// WAN partition mask (fault injection): while a pair is blocked, every
  /// packet between the two attachments is dropped in the core (symmetric,
  /// like a BGP blackhole between two regions).
  void set_blocked(std::size_t iface_a, std::size_t iface_b, bool blocked);
  [[nodiscard]] bool blocked(std::size_t iface_a, std::size_t iface_b) const {
    return blocked_pairs_.contains(key(iface_a, iface_b));
  }
  [[nodiscard]] std::uint64_t partition_drops() const noexcept {
    return partition_drops_;
  }

 protected:
  void forward(net::IpPacket pkt, Link& from) override;

 private:
  [[nodiscard]] std::size_t iface_index_of(const Link& link);

  static constexpr std::uint64_t key(std::size_t a, std::size_t b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::unordered_map<std::uint64_t, PathSpec> paths_;
  std::unordered_set<std::uint64_t> blocked_pairs_;
  // One interface per attachment: at 10k hosts a per-packet linear scan
  // over interfaces() turns the core O(N²). Attachments are append-only,
  // so the map is rebuilt lazily when the interface count grows.
  std::unordered_map<const Link*, std::size_t> iface_by_link_;
  std::uint64_t partition_drops_{0};
  obs::Counter* c_partition_drops_{nullptr};
  // FIFO clamp per directed (in,out) interface pair: core jitter must
  // not reorder packets of one flow.
  std::unordered_map<std::uint64_t, TimePoint> last_forward_;
};

}  // namespace wav::fabric
