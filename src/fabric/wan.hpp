// WAN testbed builder: sites (hosts behind a NAT gateway or directly
// public) attached to a shared Internet core with per-site-pair path
// characteristics. Encodes the paper's Table I topology via
// `paper_testbed()` and arbitrary emulated-WAN layouts for the
// scalability experiments.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/host.hpp"
#include "fabric/internet.hpp"
#include "fabric/network.hpp"
#include "nat/nat_gateway.hpp"

namespace wav::fabric {

struct SiteConfig {
  std::string name;
  nat::NatConfig nat{};                        // gateway behaviour
  BitRate access_rate{megabits_per_sec(100)};  // site uplink capacity
  Duration access_delay{microseconds(200)};    // last-mile one-way delay
  BitRate lan_rate{gigabits_per_sec(1)};       // intra-site host<->gateway links
  std::size_t host_count{1};
  double cpu_gflops{8.0};                      // per-host compute (apps module)
  bool public_hosts{false};  // no NAT: hosts sit directly on the Internet
};

struct PairPath {
  Duration one_way{milliseconds(10)};
  Duration jitter_stddev{kZeroDuration};
  double loss{0.0};
};

class Wan {
 public:
  struct Site {
    std::string name;
    nat::NatGateway* gateway{nullptr};  // null for public sites
    std::vector<HostNode*> hosts;
    std::size_t core_iface{0};          // for NATed sites: the gateway's core attachment
    std::vector<std::size_t> host_core_ifaces;  // for public sites: one per host
    double cpu_gflops{8.0};
    BitRate access_rate{};
  };

  explicit Wan(Network& network);

  /// Adds a site; hosts get private 192.168.<idx>.x addresses behind the
  /// gateway (public 100.64.<idx>.1), or public 100.66.<idx>.x addresses
  /// when `public_hosts` is set.
  Site& add_site(const SiteConfig& config);

  /// Adds a standalone public host (rendezvous server, STUN server).
  HostNode& add_public_host(const std::string& name,
                            BitRate rate = megabits_per_sec(1000),
                            Duration delay = microseconds(100));

  /// Sets the core path between two named sites/public hosts (symmetric).
  void set_path(const std::string& a, const std::string& b, PairPath path);
  /// Applies `path` to every pair not explicitly configured so far.
  void set_default_paths(PairPath path);

  [[nodiscard]] Site* site(const std::string& name);
  [[nodiscard]] HostNode* public_host(const std::string& name);
  [[nodiscard]] InternetNode& internet() noexcept { return *internet_; }
  [[nodiscard]] Network& network() noexcept { return network_; }

  /// All core attachment names (sites + public hosts), for sweep loops.
  [[nodiscard]] std::vector<std::string> attachment_names() const;

  /// Re-shapes a site's access link rate (Figure 7's `tc` equivalent).
  void set_site_rate(const std::string& name, BitRate rate);

  /// The access link(s) that attach a site or public host to the core —
  /// chaos targets for link down/up/flap faults.
  [[nodiscard]] const std::vector<Link*>& access_links(const std::string& name) const;

  /// Blocks (or heals) every core path between the two attachment groups:
  /// a WAN partition. Attachments absent from both groups stay reachable
  /// from everyone.
  void set_partition(const std::vector<std::string>& group_a,
                     const std::vector<std::string>& group_b, bool blocked);

  /// Overrides the core loss/jitter between two attachments (storm
  /// injection); pass the original PairPath back to heal.
  void set_path_quality(const std::string& a, const std::string& b, PairPath path) {
    set_path(a, b, path);
  }

 private:
  std::size_t attach_to_core(Node& node, net::Ipv4Address node_addr, BitRate rate,
                             Duration delay);

  Network& network_;
  InternetNode* internet_;
  std::deque<Site> sites_;  // deque: references from add_site stay valid
  std::unordered_map<std::string, HostNode*> public_hosts_;
  std::unordered_map<std::string, std::vector<std::size_t>> core_ifaces_;
  std::unordered_map<std::string, std::vector<Link*>> access_links_;
  std::size_t next_site_index_{1};
  std::size_t next_public_index_{1};
  std::uint32_t next_core_ip_{1};
};

/// The paper's Table I real-WAN testbed: seven sites across the
/// Asia-Pacific region plus a rendezvous server in Hong Kong. RTTs follow
/// Table I / Table II; access rates are calibrated from the paper's
/// measured per-pair WAVNet bandwidths (Table V).
struct PaperTestbed {
  // Site names used throughout the benches.
  static constexpr const char* kHku = "HKU";
  static constexpr const char* kOffCam = "OffCam";
  static constexpr const char* kSiat = "SIAT";
  static constexpr const char* kPu = "PU";
  static constexpr const char* kSinica = "Sinica";
  static constexpr const char* kAist = "AIST";
  static constexpr const char* kSdsc = "SDSC";
};

/// Builds the Table I topology into `wan`. Every site hosts `hosts_per_site`
/// machines behind a port-restricted-cone NAT (HKU gets two, as in the
/// paper).
void build_paper_testbed(Wan& wan);

/// Round-trip times between paper sites in milliseconds (Table I column 3
/// for pairs involving HKU, Table II for SIAT-PU; remaining pairs are
/// estimated from geography as documented in DESIGN.md).
[[nodiscard]] double paper_rtt_ms(const std::string& a, const std::string& b);

}  // namespace wav::fabric
