#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace wav {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
}

void TextTable::separator() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& r : rows_) columns = std::max(columns, r.cells.size());
  if (columns == 0) return title_ + "\n";

  std::vector<std::size_t> width(columns, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) {
    if (!r.is_separator) measure(r.cells);
  }

  std::string out;
  auto rule = [&] {
    for (std::size_t i = 0; i < columns; ++i) {
      out += '+';
      out.append(width[i] + 2, '-');
    }
    out += "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out += "| ";
      out += cell;
      out.append(width[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.is_separator) {
      rule();
    } else {
      emit(r.cells);
    }
  }
  rule();
  return out;
}

void TextTable::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace wav
