#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wav::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

constexpr const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }
Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
bool enabled(Level lvl) noexcept { return static_cast<int>(lvl) >= static_cast<int>(level()); }

namespace detail {

void emit(Level lvl, std::string_view component, std::string_view message) {
  const std::scoped_lock lock{g_emit_mutex};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace wav::log
