// ASCII table rendering for the benchmark harnesses. Every bench binary
// reprints the paper's table/figure as aligned text so the paper-vs-
// measured comparison is readable directly from `build/bench/...` output.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace wav {

class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Sets the header row.
  void header(std::vector<std::string> cells);
  /// Appends a data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);
  /// Appends a horizontal separator between data rows.
  void separator();

  /// Renders to a string with box-drawing-free ASCII (portable in logs).
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator{false};
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt_f(double v, int precision = 2);
[[nodiscard]] std::string fmt_int(std::int64_t v);

}  // namespace wav
