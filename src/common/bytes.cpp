#include "common/bytes.hpp"

namespace wav {

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i])) << 8) |
           static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i + 1]));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i])) << 8;
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

ByteBuffer to_bytes(std::string_view s) {
  ByteBuffer out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string bytes_to_string(std::span<const std::byte> b) {
  return std::string{reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace wav
