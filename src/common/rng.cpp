#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace wav {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t range = hi - lo;  // inclusive span - 1
  if (range == std::numeric_limits<std::uint64_t>::max()) return next();
  // Lemire-style rejection-free-ish bounded draw; bias is negligible for
  // simulation but we still debias with rejection on the wraparound zone.
  const std::uint64_t bound = range + 1;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo);
  return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Marsaglia polar method; we discard the second variate to keep the
  // generator stateless between calls (simpler determinism reasoning).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(std::span<std::size_t>(all));
  if (k < n) all.resize(k);
  return all;
}

Rng Rng::fork() noexcept { return Rng{next()}; }

}  // namespace wav
