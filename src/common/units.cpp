#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace wav {
namespace {

std::string format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  const double ns = static_cast<double>(d.count());
  const double abs_ns = std::abs(ns);
  if (abs_ns < 1e3) return format("%.0f ns", ns);
  if (abs_ns < 1e6) return format("%.2f us", ns / 1e3);
  if (abs_ns < 1e9) return format("%.3f ms", ns / 1e6);
  return format("%.3f s", ns / 1e9);
}

std::string to_string(TimePoint t) { return "t=" + to_string(t.since_start); }

std::string to_string(BitRate r) {
  if (r.is_unlimited()) return "unlimited";
  const double bps = static_cast<double>(r.bits_per_sec);
  if (bps < 1e3) return format("%.0f bit/s", bps);
  if (bps < 1e6) return format("%.2f Kbit/s", bps / 1e3);
  if (bps < 1e9) return format("%.2f Mbit/s", bps / 1e6);
  return format("%.2f Gbit/s", bps / 1e9);
}

std::string to_string(ByteSize s) {
  const double b = static_cast<double>(s.bytes);
  if (b < 1024.0) return format("%.0f B", b);
  if (b < 1024.0 * 1024.0) return format("%.1f KiB", b / 1024.0);
  if (b < 1024.0 * 1024.0 * 1024.0) return format("%.1f MiB", b / (1024.0 * 1024.0));
  return format("%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace wav
