// Strong unit types used across the simulator: simulated time, durations,
// data rates and data sizes. Keeping these distinct (rather than raw
// integers) prevents the classic bits-vs-bytes and ms-vs-us mistakes in
// network arithmetic.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace wav {

/// Duration of simulated time. Nanosecond resolution is enough to express
/// sub-microsecond packet processing costs while still covering ~292 years
/// in a signed 64-bit count.
using Duration = std::chrono::nanoseconds;

inline constexpr Duration kZeroDuration = Duration::zero();

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t n) { return Duration{n * 1000}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t n) { return Duration{n * 1000'000}; }
[[nodiscard]] constexpr Duration seconds(std::int64_t n) { return Duration{n * 1000'000'000}; }

/// Converts a floating-point quantity of seconds/milliseconds to Duration,
/// rounding to the nearest nanosecond.
[[nodiscard]] constexpr Duration seconds_f(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration milliseconds_f(double ms) { return seconds_f(ms * 1e-3); }

[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}
[[nodiscard]] constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-6;
}
[[nodiscard]] constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-3;
}

/// A point on the simulated clock, measured since simulation start.
/// Distinct from Duration so that `time + time` does not compile.
struct TimePoint {
  Duration since_start{0};

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint& operator+=(Duration d) {
    since_start += d;
    return *this;
  }
};

[[nodiscard]] constexpr TimePoint operator+(TimePoint t, Duration d) {
  return TimePoint{t.since_start + d};
}
[[nodiscard]] constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
[[nodiscard]] constexpr Duration operator-(TimePoint a, TimePoint b) {
  return a.since_start - b.since_start;
}
[[nodiscard]] constexpr TimePoint operator-(TimePoint t, Duration d) {
  return TimePoint{t.since_start - d};
}

inline constexpr TimePoint kSimStart{};
/// Sentinel "never" timestamp, safely far in the future.
inline constexpr TimePoint kTimeInfinity{Duration{INT64_MAX / 2}};

[[nodiscard]] constexpr double to_seconds(TimePoint t) { return to_seconds(t.since_start); }
[[nodiscard]] constexpr double to_milliseconds(TimePoint t) {
  return to_milliseconds(t.since_start);
}

/// Link/network data rate. Stored in bits per second, the unit every
/// networking paper quotes; helpers convert to the byte-based arithmetic
/// the simulator needs internally.
struct BitRate {
  std::uint64_t bits_per_sec{0};

  constexpr auto operator<=>(const BitRate&) const = default;

  [[nodiscard]] constexpr double megabits_per_sec() const {
    return static_cast<double>(bits_per_sec) / 1e6;
  }
  [[nodiscard]] constexpr double bytes_per_sec() const {
    return static_cast<double>(bits_per_sec) / 8.0;
  }
  [[nodiscard]] constexpr bool is_unlimited() const { return bits_per_sec == 0; }

  /// Time to serialize `bytes` onto a link of this rate. An unlimited
  /// (zero) rate serializes instantaneously.
  [[nodiscard]] constexpr Duration transmit_time(std::uint64_t bytes) const {
    if (is_unlimited()) return kZeroDuration;
    const double secs = static_cast<double>(bytes) * 8.0 / static_cast<double>(bits_per_sec);
    return seconds_f(secs);
  }
};

[[nodiscard]] constexpr BitRate bits_per_sec(std::uint64_t b) { return BitRate{b}; }
[[nodiscard]] constexpr BitRate kilobits_per_sec(double k) {
  return BitRate{static_cast<std::uint64_t>(k * 1e3)};
}
[[nodiscard]] constexpr BitRate megabits_per_sec(double m) {
  return BitRate{static_cast<std::uint64_t>(m * 1e6)};
}
[[nodiscard]] constexpr BitRate gigabits_per_sec(double g) {
  return BitRate{static_cast<std::uint64_t>(g * 1e9)};
}
/// A zero rate means "no serialization delay" throughout the simulator.
inline constexpr BitRate kUnlimitedRate{0};

/// Data size in bytes with convenience constructors for the usual suffixes.
struct ByteSize {
  std::uint64_t bytes{0};

  constexpr auto operator<=>(const ByteSize&) const = default;

  [[nodiscard]] constexpr double kib() const { return static_cast<double>(bytes) / 1024.0; }
  [[nodiscard]] constexpr double mib() const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  }

  constexpr ByteSize& operator+=(ByteSize o) {
    bytes += o.bytes;
    return *this;
  }
};

[[nodiscard]] constexpr ByteSize bytes(std::uint64_t n) { return ByteSize{n}; }
[[nodiscard]] constexpr ByteSize kibibytes(std::uint64_t n) { return ByteSize{n * 1024}; }
[[nodiscard]] constexpr ByteSize mebibytes(std::uint64_t n) { return ByteSize{n * 1024 * 1024}; }

[[nodiscard]] constexpr ByteSize operator+(ByteSize a, ByteSize b) {
  return ByteSize{a.bytes + b.bytes};
}

/// Throughput achieved when `size` is moved in `elapsed` simulated time.
[[nodiscard]] constexpr BitRate rate_of(ByteSize size, Duration elapsed) {
  if (elapsed <= kZeroDuration) return kUnlimitedRate;
  const double bps = static_cast<double>(size.bytes) * 8.0 / to_seconds(elapsed);
  return BitRate{static_cast<std::uint64_t>(bps)};
}

[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);
[[nodiscard]] std::string to_string(BitRate r);
[[nodiscard]] std::string to_string(ByteSize s);

}  // namespace wav
