// Minimal type-safe "{}" formatter (GCC 12 in this environment ships no
// <format>). Supports positional "{}" placeholders only; each argument is
// rendered via operator<< . Unmatched placeholders render literally.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace wav {

namespace detail {

inline void append_one(std::string& out, std::string_view fmt, std::size_t& pos) {
  out.append(fmt.substr(pos));
  pos = fmt.size();
}

template <typename Arg>
void append_one(std::string& out, std::string_view fmt, std::size_t& pos, Arg&& arg) {
  const std::size_t brace = fmt.find("{}", pos);
  if (brace == std::string_view::npos) {
    out.append(fmt.substr(pos));
    pos = fmt.size();
    return;
  }
  out.append(fmt.substr(pos, brace - pos));
  std::ostringstream os;
  os << std::forward<Arg>(arg);
  out += os.str();
  pos = brace + 2;
}

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format_str(std::string_view fmt, Args&&... args) {
  std::string out;
  out.reserve(fmt.size() + sizeof...(args) * 8);
  std::size_t pos = 0;
  (detail::append_one(out, fmt, pos, std::forward<Args>(args)), ...);
  if (pos < fmt.size()) out.append(fmt.substr(pos));
  return out;
}

}  // namespace wav
