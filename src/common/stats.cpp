#include "common/stats.hpp"

#include <cmath>

namespace wav {

void OnlineStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stats_.add(x);
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

IntervalSeries::IntervalSeries(TimePoint start, Duration interval)
    : start_(start), interval_(interval) {}

void IntervalSeries::add(TimePoint t, double amount) {
  if (t < start_ || interval_ <= kZeroDuration) return;
  const auto idx =
      static_cast<std::size_t>((t - start_).count() / interval_.count());
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += amount;
}

std::vector<TimeSeriesPoint> IntervalSeries::rate_series(TimePoint end) const {
  auto points = sum_series(end);
  const double secs = to_seconds(interval_);
  for (auto& p : points) p.value /= secs;
  return points;
}

std::vector<TimeSeriesPoint> IntervalSeries::sum_series(TimePoint end) const {
  std::vector<TimeSeriesPoint> out;
  if (end <= start_) return out;
  const auto n_buckets = static_cast<std::size_t>(
      (end - start_ + interval_ - Duration{1}).count() / interval_.count());
  out.reserve(n_buckets);
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const TimePoint at = start_ + interval_ * static_cast<std::int64_t>(i);
    const double v = i < buckets_.size() ? buckets_[i] : 0.0;
    out.push_back({at, v});
  }
  return out;
}

}  // namespace wav
