// Fixed-size worker pool used by benches to run *independent* simulations
// in parallel (parameter sweeps, per-pair measurements). Following the
// message-passing discipline of the HPC guides, workers share no mutable
// state: each task owns its inputs and returns results by value through
// the future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wav {

class ThreadPool {
 public:
  /// `threads == 0` picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    auto fut = task->get_future();
    {
      const std::scoped_lock lock{mutex_};
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions from tasks propagate from here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_{false};
};

}  // namespace wav
