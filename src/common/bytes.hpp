// Byte-level serialization helpers. All protocol codecs (Ethernet, ARP,
// IPv4, UDP, TCP, ICMP, WAVNet encapsulation, CAN control messages) write
// and parse real network-byte-order bytes through these two classes, so
// the on-wire formats in this repository are genuine and testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wav {

using ByteBuffer = std::vector<std::byte>;

/// Appends big-endian (network order) fields to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer& out) noexcept : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(static_cast<std::byte>(v)); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v & 0xFF));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFF));
  }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void raw(std::span<const std::byte> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }

  /// Length-prefixed (u16) UTF-8 string; strings longer than 65535 bytes
  /// are truncated — control-plane strings are short identifiers.
  void str(std::string_view s) {
    const auto n = static_cast<std::uint16_t>(std::min<std::size_t>(s.size(), 0xFFFF));
    u16(n);
    raw(std::as_bytes(std::span{s.data(), n}));
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_->size(); }

 private:
  ByteBuffer* out_;
};

/// Reads big-endian fields from a buffer. All accessors are bounds-checked
/// and return nullopt past the end; callers treat that as a malformed
/// packet (drop), never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (pos_ >= data_.size()) return std::nullopt;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::optional<std::uint16_t> u16() {
    const auto hi = u8();
    const auto lo = u8();
    if (!hi || !lo) return std::nullopt;
    return static_cast<std::uint16_t>((static_cast<std::uint16_t>(*hi) << 8) | *lo);
  }

  [[nodiscard]] std::optional<std::uint32_t> u32() {
    const auto hi = u16();
    const auto lo = u16();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<std::uint32_t>(*hi) << 16) | *lo;
  }

  [[nodiscard]] std::optional<std::uint64_t> u64() {
    const auto hi = u32();
    const auto lo = u32();
    if (!hi || !lo) return std::nullopt;
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }

  [[nodiscard]] std::optional<double> f64() {
    const auto bits = u64();
    if (!bits) return std::nullopt;
    double v = 0;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::optional<std::span<const std::byte>> raw(std::size_t n) {
    if (pos_ + n > data_.size()) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::optional<std::string> str() {
    const auto n = u16();
    if (!n) return std::nullopt;
    const auto body = raw(*n);
    if (!body) return std::nullopt;
    return std::string{reinterpret_cast<const char*>(body->data()), body->size()};
  }

  /// Remaining unread bytes.
  [[nodiscard]] std::span<const std::byte> rest() const { return data_.subspan(pos_); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  bool skip(std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    pos_ += n;
    return true;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

/// RFC 1071 Internet checksum over a byte span (used by IPv4/ICMP codecs).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// Converts string literals to byte buffers in tests and app payloads.
[[nodiscard]] ByteBuffer to_bytes(std::string_view s);
[[nodiscard]] std::string bytes_to_string(std::span<const std::byte> b);

}  // namespace wav
