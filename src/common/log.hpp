// Minimal leveled logger. The simulator is deterministic and single
// threaded per Simulation, but benches run simulations on a thread pool,
// so emission is serialized with a mutex. Logging defaults to `warn` so
// tests and benches stay quiet; examples turn on `info`.
#pragma once

#include <string>
#include <string_view>

#include "common/format.hpp"

namespace wav::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are discarded cheaply.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;

/// True when a message at `lvl` would be emitted.
[[nodiscard]] bool enabled(Level lvl) noexcept;

namespace detail {
void emit(Level lvl, std::string_view component, std::string_view message);
}

template <typename... Args>
void write(Level lvl, std::string_view component, std::string_view fmt,
           Args&&... args) {
  if (!enabled(lvl)) return;
  detail::emit(lvl, component, format_str(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void trace(std::string_view component, std::string_view fmt, Args&&... args) {
  write(Level::kTrace, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void debug(std::string_view component, std::string_view fmt, Args&&... args) {
  write(Level::kDebug, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void info(std::string_view component, std::string_view fmt, Args&&... args) {
  write(Level::kInfo, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(std::string_view component, std::string_view fmt, Args&&... args) {
  write(Level::kWarn, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void error(std::string_view component, std::string_view fmt, Args&&... args) {
  write(Level::kError, component, fmt, std::forward<Args>(args)...);
}

}  // namespace wav::log
