// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element (link jitter, packet loss, page-dirty patterns,
// synthetic latency matrices) draws from an explicitly seeded Rng so that a
// whole experiment is reproducible bit-for-bit from its seed. The generator
// is xoshiro256++, which is fast, has a 256-bit state and passes BigCrush —
// more than adequate for simulation workloads.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace wav {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via SplitMix64 so that nearby seeds yield
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// UniformRandomBitGenerator interface (usable with <random>
  /// distributions if ever needed).
  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Normal variate via Marsaglia polar method.
  double normal(double mean, double stddev) noexcept;

  /// Exponential variate with the given mean (mean = 1/lambda).
  double exponential(double mean) noexcept;

  /// Pareto variate with scale x_m > 0 and shape alpha > 0. Heavy-tailed;
  /// used for wide-area latency outliers.
  double pareto(double x_m, double alpha) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; handy for giving each
  /// simulated component its own stream while staying reproducible.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step, exposed because hashing/seeding elsewhere reuses it.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace wav
