// Small statistics toolkit used by the measurement apps and benches:
// online mean/variance (Welford), min/max, percentiles over retained
// samples, and fixed-interval time series for "polled every 500 ms"
// style plots (Figures 9 and 10 in the paper).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace wav {

/// Welford online accumulator; O(1) memory, numerically stable.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
  double sum_{0};
};

/// Retains every sample; supports exact percentiles. Fine for the sample
/// counts in this repository (<= a few hundred thousand).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }

  /// Exact percentile by nearest-rank; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
  OnlineStats stats_;
};

/// A point in a measured time series (e.g. throughput per 500 ms poll).
struct TimeSeriesPoint {
  TimePoint at;
  double value{0};
};

/// Fixed-interval series builder: feed raw increments (bytes received,
/// requests completed) and it buckets them by poll interval.
class IntervalSeries {
 public:
  IntervalSeries(TimePoint start, Duration interval);

  /// Records `amount` occurring at time `t` (t >= start).
  void add(TimePoint t, double amount);

  /// Closes all buckets up to `end` and returns one point per interval
  /// whose value is the per-second rate within that interval.
  [[nodiscard]] std::vector<TimeSeriesPoint> rate_series(TimePoint end) const;

  /// Same buckets but raw sums rather than rates.
  [[nodiscard]] std::vector<TimeSeriesPoint> sum_series(TimePoint end) const;

  [[nodiscard]] Duration interval() const noexcept { return interval_; }
  [[nodiscard]] TimePoint start() const noexcept { return start_; }

 private:
  TimePoint start_;
  Duration interval_;
  std::vector<double> buckets_;
};

}  // namespace wav
