// NAT/firewall gateway models.
//
// Implements the four NAT behaviours the paper (via STUN, RFC 3489
// terminology) distinguishes:
//   * Full Cone             — one mapping per (private ip, port); inbound
//                             allowed from any remote endpoint.
//   * Restricted Cone       — inbound allowed only from IPs the private
//                             host has previously sent to.
//   * Port-Restricted Cone  — inbound allowed only from exact ip:port
//                             pairs previously sent to.
//   * Symmetric             — a distinct public port per (private ip:port,
//                             remote ip:port) flow; inbound only from that
//                             exact remote. UDP hole punching fails here,
//                             which WAVNet detects via STUN and reports.
//
// Mappings expire after an idle timeout ("NAT can only maintain the
// connection state for a limited period of time", §II.B), which is what
// makes WAVNet's CONNECT_PULSE keepalive necessary.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fabric/node.hpp"
#include "obs/flow.hpp"
#include "obs/metrics.hpp"

namespace wav::nat {

enum class NatType {
  kFullCone,
  kRestrictedCone,
  kPortRestrictedCone,
  kSymmetric,
  kOpenInternet,  // no translation: a host with a public IP
};

[[nodiscard]] const char* to_string(NatType t) noexcept;

/// True when RFC 5128-style UDP hole punching succeeds between two hosts
/// behind NATs of these types (at least one side must accept packets from
/// a remote whose source port was learned via the rendezvous server).
[[nodiscard]] bool hole_punch_compatible(NatType a, NatType b) noexcept;

struct NatConfig {
  NatType type{NatType::kPortRestrictedCone};
  Duration udp_binding_timeout{seconds(60)};
  Duration tcp_binding_timeout{seconds(300)};
  std::uint16_t port_range_begin{30000};
  std::uint16_t port_range_end{59999};
};

struct NatStats {
  std::uint64_t translated_outbound{0};
  std::uint64_t translated_inbound{0};
  std::uint64_t blocked_inbound{0};
  std::uint64_t expired_bindings{0};
  std::uint64_t bindings_created{0};
  std::uint64_t dropped_down{0};  // packets that hit a crashed gateway
};

class NatGateway : public fabric::Node {
 public:
  NatGateway(fabric::Network& network, std::string name, NatConfig config);

  /// Marks the uplink interface; every other interface is a LAN port.
  /// Must be called after the network wires the links. Traffic between
  /// LAN ports is routed without translation (the site's internal LAN);
  /// LAN-to-WAN traffic is translated; unsolicited WAN traffic is
  /// filtered per the configured NAT type.
  void set_wan_interface(std::size_t index) {
    wan_iface_ = index;
    set_default_route(index);
  }

  [[nodiscard]] net::Ipv4Address public_ip() const {
    return interfaces()[wan_iface_].address;
  }
  [[nodiscard]] const NatConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NatStats& nat_stats() const noexcept { return nat_stats_; }

  /// Number of live (non-expired) bindings right now.
  [[nodiscard]] std::size_t active_bindings() const;

  /// Drops every binding immediately (models NAT reboot; used by failure
  /// injection tests).
  void flush_bindings();

  /// Ungraceful power loss: bindings vanish AND the box stops forwarding
  /// until restart(). restart() models the reboot completing — the
  /// gateway forwards again, but with an empty translation table, which
  /// invalidates every established hole-punched path through it.
  void crash();
  void restart();
  [[nodiscard]] bool down() const noexcept { return down_; }

 protected:
  void forward(net::IpPacket pkt, fabric::Link& from) override;
  void deliver_local(const net::IpPacket& pkt, fabric::Link& from) override;

 private:
  struct FlowKey {
    net::Ipv4Address private_ip{};
    std::uint16_t private_port{0};
    std::uint8_t protocol{0};
    net::Endpoint remote{};  // meaningful for symmetric NAT only

    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept;
  };

  struct Binding {
    std::uint16_t public_port{0};
    net::Ipv4Address private_ip{};
    std::uint16_t private_port{0};
    std::uint8_t protocol{0};
    net::Endpoint symmetric_remote{};  // exact remote for symmetric NAT
    TimePoint last_used{};
    // Per-remote filter state with its own idle expiry: a cone mapping
    // may stay alive on unrelated traffic (e.g. rendezvous heartbeats),
    // but the permission to receive from a *specific* remote decays
    // unless the host keeps sending toward it — which is precisely why
    // WAVNet needs CONNECT_PULSE on every tunnel, not just any traffic.
    std::unordered_map<net::Ipv4Address, TimePoint> contacted_ips;
    std::unordered_map<net::Endpoint, TimePoint> contacted_endpoints;
  };

  [[nodiscard]] Duration timeout_for(std::uint8_t protocol) const noexcept;
  [[nodiscard]] bool is_expired(const Binding& b) const;
  void translate_outbound(net::IpPacket pkt);
  void translate_inbound(const net::IpPacket& pkt, fabric::Link& from);
  Binding* find_or_create_binding(const FlowKey& key);
  std::uint16_t allocate_public_port();
  void drop_expired();
  void note_flow_drop(const net::IpPacket& pkt, obs::DropReason reason);

  NatConfig config_;
  NatStats nat_stats_;
  std::size_t wan_iface_{1};
  bool down_{false};

  std::unordered_map<FlowKey, std::uint16_t, FlowKeyHash> flow_to_port_;
  // Keyed by (public_port << 8 | protocol); ICMP uses the echo id as port.
  std::unordered_map<std::uint32_t, Binding> port_to_binding_;
  std::uint16_t next_port_;

  obs::Counter* c_translated_outbound_{nullptr};
  obs::Counter* c_translated_inbound_{nullptr};
  obs::Counter* c_blocked_inbound_{nullptr};
  obs::Counter* c_expired_bindings_{nullptr};
  obs::Counter* c_bindings_created_{nullptr};
  obs::Gauge* g_bindings_active_{nullptr};  // live translation table size

  void sync_binding_gauge();
};

/// Extracts the (src_port, dst_port) pair of any supported L4 body. ICMP
/// echo uses the identifier for both (how real NATs track ICMP flows).
struct L4Ports {
  std::uint16_t src{0};
  std::uint16_t dst{0};
};
[[nodiscard]] std::optional<L4Ports> l4_ports(const net::IpPacket& pkt) noexcept;

}  // namespace wav::nat
