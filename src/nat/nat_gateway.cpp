#include "nat/nat_gateway.hpp"

#include <cassert>

#include "common/log.hpp"
#include "obs/profiler.hpp"
#include "fabric/network.hpp"

namespace wav::nat {

const char* to_string(NatType t) noexcept {
  switch (t) {
    case NatType::kFullCone: return "full-cone";
    case NatType::kRestrictedCone: return "restricted-cone";
    case NatType::kPortRestrictedCone: return "port-restricted-cone";
    case NatType::kSymmetric: return "symmetric";
    case NatType::kOpenInternet: return "open-internet";
  }
  return "?";
}

bool hole_punch_compatible(NatType a, NatType b) noexcept {
  // Hole punching needs each side's NAT to accept a packet from the
  // peer's advertised public endpoint after the local host has sent one
  // toward it. Cone NATs reuse the same public port for all remotes, so
  // the endpoint a peer learns from the rendezvous server stays valid.
  // A symmetric NAT allocates a fresh port for each new remote, so the
  // advertised endpoint is wrong; punching still works when the other
  // side filters loosely enough to accept the unpredicted source port:
  // a full cone (accepts anything) or an address-restricted cone (the
  // source *IP* was contacted; only the port is surprising). Against a
  // port-restricted cone or another symmetric NAT it fails.
  auto is_symmetric = [](NatType t) { return t == NatType::kSymmetric; };
  auto tolerant = [](NatType t) {
    return t == NatType::kFullCone || t == NatType::kRestrictedCone ||
           t == NatType::kOpenInternet;
  };
  if (is_symmetric(a) && is_symmetric(b)) return false;
  if (is_symmetric(a)) return tolerant(b);
  if (is_symmetric(b)) return tolerant(a);
  return true;
}

std::optional<L4Ports> l4_ports(const net::IpPacket& pkt) noexcept {
  if (const auto* udp = pkt.udp()) return L4Ports{udp->src_port, udp->dst_port};
  if (const auto* tcp = pkt.tcp()) return L4Ports{tcp->src_port, tcp->dst_port};
  if (const auto* icmp = pkt.icmp()) return L4Ports{icmp->id, icmp->id};
  return std::nullopt;
}

namespace {

void set_src_port(net::IpPacket& pkt, std::uint16_t port) {
  if (auto* udp = pkt.udp()) {
    udp->src_port = port;
  } else if (auto* tcp = pkt.tcp()) {
    tcp->src_port = port;
  } else if (auto* icmp = pkt.icmp()) {
    icmp->id = port;
  }
}

void set_dst_port(net::IpPacket& pkt, std::uint16_t port) {
  if (auto* udp = pkt.udp()) {
    udp->dst_port = port;
  } else if (auto* tcp = pkt.tcp()) {
    tcp->dst_port = port;
  } else if (auto* icmp = pkt.icmp()) {
    icmp->id = port;
  }
}

}  // namespace

std::size_t NatGateway::FlowKeyHash::operator()(const FlowKey& k) const noexcept {
  std::uint64_t h = k.private_ip.value;
  h = h * 1000003ULL + k.private_port;
  h = h * 1000003ULL + k.protocol;
  h = h * 1000003ULL + k.remote.ip.value;
  h = h * 1000003ULL + k.remote.port;
  return std::hash<std::uint64_t>{}(h);
}

NatGateway::NatGateway(fabric::Network& network, std::string name, NatConfig config)
    : fabric::Node(network, std::move(name)),
      config_(config),
      next_port_(config.port_range_begin) {
  obs::MetricsRegistry& reg = sim().metrics();
  c_translated_outbound_ = &reg.counter("nat.translated_outbound", this->name());
  c_translated_inbound_ = &reg.counter("nat.translated_inbound", this->name());
  c_blocked_inbound_ = &reg.counter("nat.blocked_inbound", this->name());
  c_expired_bindings_ = &reg.counter("nat.expired_bindings", this->name());
  c_bindings_created_ = &reg.counter("nat.bindings_created", this->name());
  g_bindings_active_ = &reg.gauge("nat.bindings_active", this->name());
}

void NatGateway::sync_binding_gauge() {
  g_bindings_active_->set(static_cast<double>(port_to_binding_.size()));
}

Duration NatGateway::timeout_for(std::uint8_t protocol) const noexcept {
  return protocol == net::kProtoTcp ? config_.tcp_binding_timeout
                                    : config_.udp_binding_timeout;
}

bool NatGateway::is_expired(const Binding& b) const {
  return sim().now() - b.last_used > timeout_for(b.protocol);
}

std::size_t NatGateway::active_bindings() const {
  std::size_t n = 0;
  for (const auto& [port, b] : port_to_binding_) {
    if (!is_expired(b)) ++n;
  }
  return n;
}

void NatGateway::flush_bindings() {
  flow_to_port_.clear();
  port_to_binding_.clear();
  sync_binding_gauge();
}

void NatGateway::crash() {
  down_ = true;
  flush_bindings();
  sim().tracer().instant(obs::Category::kChaos, "nat.crash", name());
}

void NatGateway::restart() {
  if (!down_) return;
  down_ = false;
  sim().tracer().instant(obs::Category::kChaos, "nat.restart", name());
}

void NatGateway::drop_expired() {
  WAV_PROF_SCOPE("nat", "drop_expired");
  for (auto it = port_to_binding_.begin(); it != port_to_binding_.end();) {
    if (is_expired(it->second)) {
      const Binding& b = it->second;
      FlowKey key{b.private_ip, b.private_port, b.protocol, {}};
      if (config_.type == NatType::kSymmetric) key.remote = b.symmetric_remote;
      flow_to_port_.erase(key);
      ++nat_stats_.expired_bindings;
      c_expired_bindings_->inc();
      sim().tracer().instant(obs::Category::kNat, "nat.binding_expired", name(),
                             "\"public_port\":" + std::to_string(b.public_port));
      it = port_to_binding_.erase(it);
      sync_binding_gauge();
    } else {
      ++it;
    }
  }
}

std::uint16_t NatGateway::allocate_public_port() {
  const std::uint32_t range =
      static_cast<std::uint32_t>(config_.port_range_end - config_.port_range_begin) + 1;
  for (std::uint32_t attempt = 0; attempt < range; ++attempt) {
    const std::uint16_t candidate = next_port_;
    next_port_ = (next_port_ >= config_.port_range_end) ? config_.port_range_begin
                                                        : static_cast<std::uint16_t>(next_port_ + 1);
    bool in_use = false;
    for (std::uint8_t proto : {net::kProtoUdp, net::kProtoTcp, net::kProtoIcmp}) {
      const std::uint32_t key = (static_cast<std::uint32_t>(candidate) << 8) | proto;
      if (const auto it = port_to_binding_.find(key);
          it != port_to_binding_.end() && !is_expired(it->second)) {
        in_use = true;
        break;
      }
    }
    if (!in_use) return candidate;
  }
  // Port exhaustion: recycle expired bindings and retry once.
  drop_expired();
  return next_port_;
}

NatGateway::Binding* NatGateway::find_or_create_binding(const FlowKey& key) {
  if (const auto it = flow_to_port_.find(key); it != flow_to_port_.end()) {
    const std::uint32_t pkey = (static_cast<std::uint32_t>(it->second) << 8) | key.protocol;
    const auto bit = port_to_binding_.find(pkey);
    if (bit != port_to_binding_.end()) {
      if (!is_expired(bit->second)) return &bit->second;
      ++nat_stats_.expired_bindings;
      c_expired_bindings_->inc();
      sim().tracer().instant(
          obs::Category::kNat, "nat.binding_expired", name(),
          "\"public_port\":" + std::to_string(bit->second.public_port));
      port_to_binding_.erase(bit);
    }
    flow_to_port_.erase(it);
  }
  const std::uint16_t port = allocate_public_port();
  Binding b;
  b.public_port = port;
  b.private_ip = key.private_ip;
  b.private_port = key.private_port;
  b.protocol = key.protocol;
  b.symmetric_remote = key.remote;
  b.last_used = sim().now();
  ++nat_stats_.bindings_created;
  c_bindings_created_->inc();
  sim().tracer().instant(obs::Category::kNat, "nat.binding_created", name(),
                         "\"public_port\":" + std::to_string(port));
  flow_to_port_[key] = port;
  const std::uint32_t pkey = (static_cast<std::uint32_t>(port) << 8) | key.protocol;
  auto [it, inserted] = port_to_binding_.insert_or_assign(pkey, std::move(b));
  (void)inserted;
  sync_binding_gauge();
  return &it->second;
}

void NatGateway::forward(net::IpPacket pkt, fabric::Link& from) {
  WAV_PROF_SCOPE("nat", "forward");
  if (down_) {
    ++nat_stats_.dropped_down;
    note_flow_drop(pkt, obs::DropReason::kNatDown);
    return;
  }
  const bool from_wan = interfaces()[wan_iface_].link == &from;
  if (from_wan) {
    // WAN-side packet not addressed to our public IP: a plain router
    // would forward, but a NAT has no mapping — drop.
    ++nat_stats_.blocked_inbound;
    c_blocked_inbound_->inc();
    note_flow_drop(pkt, obs::DropReason::kNatMappingMiss);
    return;
  }
  if (pkt.ttl <= 1) {
    ++stats_.dropped_ttl;
    note_flow_drop(pkt, obs::DropReason::kTtlExpired);
    return;
  }
  pkt.ttl = static_cast<std::uint8_t>(pkt.ttl - 1);

  // Intra-site traffic: a LAN route (other than the default WAN uplink)
  // to the destination means plain routing, no translation.
  if (const fabric::Interface* out = route_lookup(pkt.dst);
      out != nullptr && out != &interfaces()[wan_iface_]) {
    ++stats_.forwarded;
    transmit(*out, std::move(pkt));
    return;
  }
  translate_outbound(std::move(pkt));
}

void NatGateway::translate_outbound(net::IpPacket pkt) {
  WAV_PROF_SCOPE("nat", "translate_outbound");
  const auto ports = l4_ports(pkt);
  if (!ports) {
    ++stats_.dropped_no_route;
    note_flow_drop(pkt, obs::DropReason::kNoRoute);
    return;
  }
  FlowKey key{pkt.src, ports->src, pkt.protocol(), {}};
  if (config_.type == NatType::kSymmetric) {
    key.remote = net::Endpoint{pkt.dst, ports->dst};
  }
  Binding* b = find_or_create_binding(key);
  b->last_used = sim().now();
  b->contacted_ips[pkt.dst] = sim().now();
  b->contacted_endpoints[net::Endpoint{pkt.dst, ports->dst}] = sim().now();

  pkt.src = public_ip();
  set_src_port(pkt, b->public_port);
  ++nat_stats_.translated_outbound;
  c_translated_outbound_->inc();
  if (const net::FlowContext* fc = obs::flow_of(pkt)) {
    sim().flows().forwarded(*fc, obs::HopComponent::kNat, name());
  }
  transmit(interfaces()[wan_iface_], std::move(pkt));
}

void NatGateway::deliver_local(const net::IpPacket& pkt, fabric::Link& from) {
  if (down_) {
    ++nat_stats_.dropped_down;
    note_flow_drop(pkt, obs::DropReason::kNatDown);
    return;
  }
  const bool from_wan = interfaces()[wan_iface_].link == &from;
  if (!from_wan) {
    // Hairpin attempt from the LAN side; consumer NATs typically drop it.
    ++nat_stats_.blocked_inbound;
    c_blocked_inbound_->inc();
    note_flow_drop(pkt, obs::DropReason::kNatFiltered);
    return;
  }
  translate_inbound(pkt, from);
}

void NatGateway::translate_inbound(const net::IpPacket& pkt, fabric::Link& from) {
  WAV_PROF_SCOPE("nat", "translate_inbound");
  (void)from;
  const auto ports = l4_ports(pkt);
  if (!ports) {
    ++nat_stats_.blocked_inbound;
    c_blocked_inbound_->inc();
    note_flow_drop(pkt, obs::DropReason::kNatFiltered);
    return;
  }
  const std::uint32_t pkey =
      (static_cast<std::uint32_t>(ports->dst) << 8) | pkt.protocol();
  const auto it = port_to_binding_.find(pkey);
  if (it == port_to_binding_.end() || is_expired(it->second)) {
    ++nat_stats_.blocked_inbound;
    c_blocked_inbound_->inc();
    note_flow_drop(pkt, obs::DropReason::kNatMappingMiss);
    return;
  }
  Binding& b = it->second;
  const net::Endpoint remote{pkt.src, ports->src};

  const Duration filter_timeout = timeout_for(pkt.protocol());
  const auto fresh = [&](const auto& table, const auto& key_value) {
    const auto entry = table.find(key_value);
    return entry != table.end() && sim().now() - entry->second <= filter_timeout;
  };
  bool allowed = false;
  switch (config_.type) {
    case NatType::kFullCone:
    case NatType::kOpenInternet:
      allowed = true;
      break;
    case NatType::kRestrictedCone:
      allowed = fresh(b.contacted_ips, pkt.src);
      break;
    case NatType::kPortRestrictedCone:
      allowed = fresh(b.contacted_endpoints, remote);
      break;
    case NatType::kSymmetric:
      allowed = b.symmetric_remote == remote;
      break;
  }
  if (!allowed) {
    ++nat_stats_.blocked_inbound;
    c_blocked_inbound_->inc();
    note_flow_drop(pkt, obs::DropReason::kNatFiltered);
    sim().tracer().instant(obs::Category::kNat, "nat.inbound_refused", name(),
                           "\"from\":\"" + remote.to_string() + "\"");
    log::trace("nat", "{} blocked inbound from {} to port {}", name(),
               remote.to_string(), ports->dst);
    return;
  }

  // Inbound traffic refreshes the binding like outbound does.
  b.last_used = sim().now();

  net::IpPacket inner = pkt;
  inner.dst = b.private_ip;
  set_dst_port(inner, b.private_port);
  ++nat_stats_.translated_inbound;
  c_translated_inbound_->inc();
  const fabric::Interface* out = route_lookup(inner.dst);
  if (out == nullptr || out == &interfaces()[wan_iface_]) {
    ++stats_.dropped_no_route;
    note_flow_drop(inner, obs::DropReason::kNoRoute);
    return;
  }
  if (const net::FlowContext* fc = obs::flow_of(inner)) {
    sim().flows().forwarded(*fc, obs::HopComponent::kNat, name());
  }
  transmit(*out, std::move(inner));
}

void NatGateway::note_flow_drop(const net::IpPacket& pkt, obs::DropReason reason) {
  if (const net::FlowContext* fc = obs::flow_of(pkt)) {
    sim().flows().dropped(*fc, obs::HopComponent::kNat, name(), reason);
  }
}

}  // namespace wav::nat
