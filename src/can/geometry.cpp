#include "can/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wav::can {

Point Point::random(Rng& rng, std::size_t dims) {
  Point p;
  p.coords.resize(dims);
  for (auto& c : p.coords) c = rng.uniform();
  return p;
}

std::string Point::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < coords.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", coords[i]);
    out += buf;
    if (i + 1 < coords.size()) out += ", ";
  }
  return out + ")";
}

Zone Zone::whole(std::size_t dims) {
  Zone z;
  z.lo.assign(dims, 0.0);
  z.hi.assign(dims, 1.0);
  return z;
}

bool Zone::contains(const Point& p) const noexcept {
  if (p.dims() != dims()) return false;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (p.coords[i] < lo[i] || p.coords[i] >= hi[i]) return false;
  }
  return true;
}

double Zone::volume() const noexcept {
  double v = 1.0;
  for (std::size_t i = 0; i < dims(); ++i) v *= hi[i] - lo[i];
  return v;
}

double Zone::distance_sq(const Point& p) const noexcept {
  // Zones are half-open boxes [lo, hi). A point sitting exactly on an
  // upper face is *not* contained, so it must rank at a small positive
  // distance — otherwise greedy routing can tie at zero among several
  // boundary zones and dead-end before reaching the true owner.
  constexpr double kHalfOpenEpsilon = 1e-9;
  double d2 = 0.0;
  for (std::size_t i = 0; i < dims(); ++i) {
    double d = 0.0;
    if (p.coords[i] < lo[i]) {
      d = lo[i] - p.coords[i];
    } else if (p.coords[i] >= hi[i]) {
      d = p.coords[i] - hi[i] + kHalfOpenEpsilon;
    }
    d2 += d * d;
  }
  return d2;
}

bool Zone::is_neighbor(const Zone& other) const noexcept {
  if (other.dims() != dims()) return false;
  std::size_t abutting = 0;
  for (std::size_t i = 0; i < dims(); ++i) {
    const bool touches = hi[i] == other.lo[i] || other.hi[i] == lo[i];
    const bool overlaps = lo[i] < other.hi[i] && other.lo[i] < hi[i];
    if (touches && !overlaps) {
      ++abutting;
    } else if (!overlaps) {
      return false;  // separated in this dimension
    }
  }
  return abutting == 1;
}

std::pair<Zone, Zone> Zone::split() const {
  std::size_t dim = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < dims(); ++i) {
    const double extent = hi[i] - lo[i];
    if (extent > best) {
      best = extent;
      dim = i;
    }
  }
  const double mid = lo[dim] + (hi[dim] - lo[dim]) / 2.0;
  Zone lower = *this;
  Zone upper = *this;
  lower.hi[dim] = mid;
  upper.lo[dim] = mid;
  return {lower, upper};
}

std::optional<Zone> Zone::merged_with(const Zone& other) const {
  if (other.dims() != dims()) return std::nullopt;
  // They must be identical in all dimensions except one, where they abut.
  std::optional<std::size_t> differing;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (lo[i] == other.lo[i] && hi[i] == other.hi[i]) continue;
    if (differing) return std::nullopt;
    differing = i;
  }
  if (!differing) return std::nullopt;
  const std::size_t d = *differing;
  Zone merged = *this;
  if (hi[d] == other.lo[d]) {
    merged.hi[d] = other.hi[d];
  } else if (other.hi[d] == lo[d]) {
    merged.lo[d] = other.lo[d];
  } else {
    return std::nullopt;
  }
  return merged;
}

double Zone::overlap_volume(const Zone& other) const noexcept {
  if (other.dims() != dims()) return 0.0;
  double v = 1.0;
  for (std::size_t i = 0; i < dims(); ++i) {
    v *= std::max(0.0, std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]));
  }
  return v;
}

bool Zone::contains_zone(const Zone& other) const noexcept {
  if (other.dims() != dims()) return false;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
  }
  return true;
}

std::string Zone::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f..%.3f", lo[i], hi[i]);
    out += buf;
    if (i + 1 < dims()) out += " x ";
  }
  return out + "]";
}

void encode_point(ByteWriter& w, const Point& p) {
  w.u8(static_cast<std::uint8_t>(p.dims()));
  for (const double c : p.coords) w.f64(c);
}

std::optional<Point> parse_point(ByteReader& r) {
  const auto dims = r.u8();
  if (!dims) return std::nullopt;
  Point p;
  p.coords.reserve(*dims);
  for (std::size_t i = 0; i < *dims; ++i) {
    const auto c = r.f64();
    if (!c) return std::nullopt;
    p.coords.push_back(*c);
  }
  return p;
}

void encode_zone(ByteWriter& w, const Zone& z) {
  w.u8(static_cast<std::uint8_t>(z.dims()));
  for (const double c : z.lo) w.f64(c);
  for (const double c : z.hi) w.f64(c);
}

std::optional<Zone> parse_zone(ByteReader& r) {
  const auto dims = r.u8();
  if (!dims) return std::nullopt;
  Zone z;
  z.lo.reserve(*dims);
  z.hi.reserve(*dims);
  for (std::size_t i = 0; i < *dims; ++i) {
    const auto c = r.f64();
    if (!c) return std::nullopt;
    z.lo.push_back(*c);
  }
  for (std::size_t i = 0; i < *dims; ++i) {
    const auto c = r.f64();
    if (!c) return std::nullopt;
    z.hi.push_back(*c);
  }
  return z;
}

}  // namespace wav::can
