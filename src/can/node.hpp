// A CAN (Content-Addressable Network) node: zone ownership, greedy point
// routing, join/leave with zone split/merge, neighbor maintenance, and a
// point-indexed item store with k-nearest queries.
//
// The node is transport-agnostic: it emits wire-encoded control messages
// through a send callback and consumes them via on_message(). WAVNet's
// rendezvous servers (overlay module) bind this to UDP sockets on the
// simulated Internet; unit tests bind it to an in-memory loopback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "can/geometry.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace wav::can {

using NodeId = std::uint64_t;

/// One entry of a neighbor's gossiped neighbor set.
struct NeighborLink {
  NodeId id{0};
  net::Endpoint endpoint{};
  Zone zone;
};

struct NeighborInfo {
  NodeId id{0};
  net::Endpoint endpoint{};
  Zone zone;
  TimePoint last_seen{};
  /// The neighbor's own neighbor set as of its last hello (the CAN
  /// paper's neighbor-list gossip). When a node dies silently, every
  /// survivor around it holds the same copy of this list, so they can
  /// elect a unique takeover claimant without talking to each other.
  std::vector<NeighborLink> peers;
};

struct Item {
  Point point;
  ByteBuffer payload;
  /// Absolute expiry; owners prune expired items (kTimeInfinity = never).
  /// Registrations carry a TTL so records of crashed publishers (or of
  /// rendezvous servers that died with their hosts' state) age out.
  TimePoint expires{kTimeInfinity};
};

struct CanStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_received{0};
  std::uint64_t routed_forwarded{0};
  std::uint64_t routed_delivered{0};
  std::uint64_t routed_dead_end{0};
  std::uint64_t total_delivery_hops{0};
  std::uint64_t zone_takeovers{0};   // dead-neighbor zones absorbed via liveness
  std::uint64_t queries_timed_out{0};  // origin-side queries answered empty
};

class CanNode {
 public:
  using SendFn = std::function<void(const net::Endpoint&, net::Chunk)>;
  using QueryCallback = std::function<void(std::vector<Item>)>;
  /// Invoked when this node becomes responsible for an item (stored
  /// locally or transferred during join/leave).
  using ItemObserver = std::function<void(const Item&)>;

  struct Config {
    std::size_t dims{2};
    Duration hello_interval{seconds(10)};
    Duration query_timeout{milliseconds(800)};
    std::size_t neighbor_expansion{1};  // extra neighbor hop for short queries
    // When a neighbor goes silent past the liveness window, absorb its
    // zone if it merges with ours (ungraceful takeover). The dead node's
    // items are lost — TTL'd re-stores repopulate them — but the
    // coordinate space stays fully covered so routing keeps working.
    // Several survivors may hold mergeable zones; the gossiped neighbor
    // lists elect a unique claimant so zones never overlap.
    bool liveness_takeover{true};
  };

  CanNode(sim::Simulation& sim, NodeId id, net::Endpoint self, SendFn send,
          Config config);
  CanNode(sim::Simulation& sim, NodeId id, net::Endpoint self, SendFn send);

  /// First node of the overlay: owns the whole space immediately.
  void bootstrap();

  /// Joins via any existing overlay member. Zone assignment arrives
  /// asynchronously; `joined()` flips once complete.
  void join(const net::Endpoint& seed);

  [[nodiscard]] bool joined() const noexcept { return joined_; }
  [[nodiscard]] const Zone& zone() const noexcept { return zone_; }
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const net::Endpoint& endpoint() const noexcept { return self_; }
  [[nodiscard]] const std::map<NodeId, NeighborInfo>& neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] const std::vector<Item>& items() const noexcept { return items_; }
  [[nodiscard]] const CanStats& stats() const noexcept { return stats_; }

  /// Routes a store request toward the owner of `point`. A non-zero TTL
  /// bounds the record's lifetime unless re-stored.
  void store(const Point& point, ByteBuffer payload, Duration ttl = kZeroDuration);

  /// Removes any stored items at exactly `point` whose payload matches
  /// the predicate — routed to the owner. Used for host deregistration.
  void erase(const Point& point, ByteBuffer payload_equals);

  /// K-nearest query: routed to the owner of `point`; the owner answers
  /// with its own items and (when short of k) polls its direct neighbors
  /// before replying to this node.
  void query(const Point& point, std::size_t k, QueryCallback callback);

  /// Graceful departure: merges the zone into the sibling neighbor when
  /// possible and transfers items. Returns false if no mergeable
  /// neighbor exists (caller should retry later; CAN background zone
  /// reassignment is out of scope).
  bool leave();

  /// Ungraceful death: no ZoneTakeover message, no byes — the node just
  /// stops. Neighbors detect the silence via hello-liveness and absorb
  /// the orphaned zone (see Config::liveness_takeover). Pending state is
  /// discarded; origin-side query callbacks fire empty first.
  void crash();
  /// Clears the crashed flag; the caller re-bootstraps or re-joins.
  void restart();
  [[nodiscard]] bool down() const noexcept { return down_; }

  /// Origin-side queries still awaiting a reply (leak detector).
  [[nodiscard]] std::size_t pending_query_count() const noexcept {
    return pending_queries_.size();
  }
  /// Pending queries older than `age`. Every entry schedules a reaper at
  /// 4x query_timeout, so an entry that has outlived that deadline is a
  /// leaked handler — a younger one is just in-flight work (an invariant
  /// sweep can land between issue and reply under continuous churn).
  [[nodiscard]] std::size_t stale_query_count(Duration age) const noexcept {
    std::size_t n = 0;
    for (const auto& [qid, q] : pending_queries_) {
      if (sim_.now() - q.started > age) ++n;
    }
    return n;
  }

  /// Feeds a received control message into the node.
  void on_message(const net::Endpoint& from, const net::Chunk& msg);

  /// Sends this node's hello to an arbitrary endpoint (no-op unless
  /// joined). Deployments with a small, statically-known fleet (WAVNet's
  /// rendezvous shards) cross-hello all members periodically: neighbor
  /// tables can decay to nothing between two nodes holding conflicting
  /// zone claims after a false-positive takeover, and an out-of-band
  /// hello is what restarts the relinquish-and-rejoin resolution.
  void announce_to(const net::Endpoint& ep);

  void set_item_observer(ItemObserver obs) { item_observer_ = std::move(obs); }

 private:
  enum class MsgType : std::uint8_t {
    kJoinRequest = 1,
    kJoinResponse,
    kNeighborHello,
    kNeighborBye,
    kStore,
    kErase,
    kQuery,
    kNeighborProbe,   // owner asking a neighbor for items near a point
    kNeighborProbeReply,
    kQueryReply,
    kZoneTakeover,
  };

  struct PendingQuery {
    QueryCallback callback;
    sim::EventId deadline{};
    TimePoint started{};  // anchor for the end-to-end latency histogram
  };

  /// Aggregation state while the owner waits for neighbor probe replies.
  struct Aggregation {
    std::uint64_t query_id{0};
    net::Endpoint requester{};
    Point point;
    std::size_t k{0};
    std::vector<Item> collected;
    std::size_t outstanding{0};
    sim::EventId deadline{};
  };

  void send(const net::Endpoint& to, net::Chunk msg);
  /// Greedy geographic routing; returns false on dead end.
  bool route(const Point& target, const net::Chunk& msg, std::uint8_t hops);
  void handle_join_request(const net::Chunk& msg);
  void handle_store(const net::Chunk& msg);
  void handle_erase(const net::Chunk& msg);
  void handle_query(const net::Chunk& msg);
  void finish_aggregation(std::uint64_t agg_id);
  /// Encodes this node's hello (id, endpoint, zone, gossiped neighbors).
  [[nodiscard]] ByteBuffer build_hello() const;
  void announce_to_neighbors();
  void prune_expired_items();
  void expire_query(std::uint64_t query_id);
  void drop_pending_state();
  void take_over_zone(const NeighborInfo& dead);
  /// True when this node wins the deterministic takeover election for
  /// `dead_info`'s zone (smallest id among the mergeable candidates in
  /// the victim's last gossiped neighbor list).
  [[nodiscard]] bool wins_takeover_election(
      const NeighborInfo& dead_info, const std::vector<NeighborInfo>& dead) const;
  /// True when some believed-alive peer in the victim's gossiped list can
  /// directly merge the victim's zone (so the plain election applies and
  /// this node should stay out of the handover path).
  [[nodiscard]] bool any_direct_takeover_candidate(
      const NeighborInfo& dead_info, const std::vector<NeighborInfo>& dead) const;
  /// The fallback election when NO candidate can merge the victim's zone
  /// into a rectangle (classic CAN fragmentation — e.g. a half-space
  /// victim surrounded by quadrants): the smallest believed-alive id in
  /// the victim's gossiped list wins unconditionally and vacates its own
  /// zone via a cascading handover.
  [[nodiscard]] bool wins_handover_election(
      const NeighborInfo& dead_info, const std::vector<NeighborInfo>& dead) const;
  /// Who inherits this node's zone when it vacates: smallest-id mergeable
  /// live neighbor if one exists (cascade ends there), else the
  /// smallest-id live neighbor (it adopts and cascades its own zone on).
  [[nodiscard]] const NeighborInfo* cascade_heir() const;
  /// Executes the handover: ships this node's zone + items + neighbor
  /// table to its cascade heir (the graceful-leave wire format), then
  /// adopts the victim's zone and neighborhood.
  bool adopt_zone_via_handover(const NeighborInfo& dead);
  /// Fires stashed handovers whose extra grace window has elapsed,
  /// unless the victim reappeared or its space was reclaimed meanwhile.
  void process_pending_handovers();
  /// Drops this node's zone claim entirely (conflicting ownership seen)
  /// and re-joins the overlay through `via`. Items are lost — TTL'd
  /// re-stores repopulate them.
  void relinquish_and_rejoin(const net::Endpoint& via);
  /// Sends this node's current zone, items and neighbor table to `to` as
  /// a kZoneTakeover (shared by leave(), the handover takeover, and the
  /// cascade). The message's hops byte carries the remaining cascade
  /// budget: a receiver that cannot merge the shipped rectangle adopts it
  /// and passes its own zone onward while the budget lasts.
  void send_zone_takeover(const net::Endpoint& to, std::uint8_t cascade_budget);
  void refresh_neighbor(NodeId nid, const net::Endpoint& ep, const Zone& zone,
                        std::vector<NeighborLink> peers = {});
  void prune_non_adjacent();
  void add_items_sorted_by_distance(const Point& p, std::vector<Item>& out,
                                    std::size_t k) const;

  sim::Simulation& sim_;
  NodeId id_;
  net::Endpoint self_;
  SendFn send_;
  Config config_;

  /// A handover election win awaiting its extra grace window. Silence
  /// alone is a weak death signal under load, and an unconditional
  /// adoption on a false positive creates overlapping claims — so the
  /// winner re-checks at `ready` that nobody (including a resurfaced
  /// victim) covers the zone before adopting it.
  struct PendingHandover {
    NeighborInfo victim;
    TimePoint ready{};
  };

  bool joined_{false};
  bool down_{false};
  Zone zone_;
  std::map<NodeId, NeighborInfo> neighbors_;
  std::vector<Item> items_;
  std::vector<PendingHandover> pending_handovers_;
  CanStats stats_;

  std::uint64_t next_query_id_{1};
  std::unordered_map<std::uint64_t, PendingQuery> pending_queries_;
  std::unordered_map<std::uint64_t, Aggregation> aggregations_;
  std::uint64_t next_agg_id_{1};
  sim::PeriodicTimer hello_timer_;
  ItemObserver item_observer_;

  obs::Counter* c_messages_sent_{nullptr};
  obs::Counter* c_messages_received_{nullptr};
  obs::Counter* c_routed_forwarded_{nullptr};
  obs::Counter* c_routed_delivered_{nullptr};
  obs::Counter* c_routed_dead_end_{nullptr};
  obs::Counter* c_zone_splits_{nullptr};
  obs::Counter* c_zone_takeovers_{nullptr};
  obs::Counter* c_queries_timed_out_{nullptr};
  obs::Histogram* h_query_hops_{nullptr};     // per-overlay (no instance)
  obs::Histogram* h_delivery_hops_{nullptr};  // all routed deliveries
  obs::Histogram* h_query_latency_ms_{nullptr};  // origin-side answered queries
};

}  // namespace wav::can
