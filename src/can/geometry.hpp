// Pure geometry of the Content-Addressable Network coordinate space
// (Ratnasamy et al., SIGCOMM 2001), which WAVNet uses to organize its
// rendezvous servers: a d-dimensional unit hypercube partitioned into
// axis-aligned zones, one per node. Splitting, adjacency and point
// routing distance are all here, independent of any networking.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace wav::can {

/// A point in [0,1)^d.
struct Point {
  std::vector<double> coords;

  [[nodiscard]] std::size_t dims() const noexcept { return coords.size(); }
  [[nodiscard]] static Point random(Rng& rng, std::size_t dims);
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Point&) const = default;
};

/// Axis-aligned box [lo, hi) per dimension.
struct Zone {
  std::vector<double> lo;
  std::vector<double> hi;

  [[nodiscard]] static Zone whole(std::size_t dims);

  [[nodiscard]] std::size_t dims() const noexcept { return lo.size(); }
  [[nodiscard]] bool contains(const Point& p) const noexcept;
  [[nodiscard]] double volume() const noexcept;

  /// Squared Euclidean distance from the zone (as a solid box) to `p`;
  /// zero when the point lies inside. Greedy CAN routing forwards to the
  /// neighbor minimizing this.
  [[nodiscard]] double distance_sq(const Point& p) const noexcept;

  /// True when the zones share a (d-1)-dimensional face: they abut in
  /// exactly one dimension and overlap in all others. This is CAN's
  /// neighbor relation.
  [[nodiscard]] bool is_neighbor(const Zone& other) const noexcept;

  /// Splits along the dimension with the largest extent (ties: lowest
  /// index), halving it. Returns {lower half, upper half}.
  [[nodiscard]] std::pair<Zone, Zone> split() const;

  /// True when `other` is the sibling produced by split() (merging them
  /// yields a valid box) — used for node-departure zone takeover.
  [[nodiscard]] std::optional<Zone> merged_with(const Zone& other) const;

  /// Volume of the intersection with `other`: zero when disjoint or
  /// merely abutting. A positive overlap between two nodes' zones means
  /// conflicting ownership claims (e.g. after a false-positive takeover).
  [[nodiscard]] double overlap_volume(const Zone& other) const noexcept;

  /// True when `other` lies entirely within this zone (shared boundaries
  /// allowed). A node whose zone is contained in a live peer's announced
  /// zone holds a redundant claim and can vacate without a coverage gap.
  [[nodiscard]] bool contains_zone(const Zone& other) const noexcept;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Zone&) const = default;
};

void encode_point(ByteWriter& w, const Point& p);
[[nodiscard]] std::optional<Point> parse_point(ByteReader& r);
void encode_zone(ByteWriter& w, const Zone& z);
[[nodiscard]] std::optional<Zone> parse_zone(ByteReader& r);

}  // namespace wav::can
