#include "can/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.hpp"
#include "obs/profiler.hpp"

namespace wav::can {
namespace {

constexpr std::uint8_t kMaxHops = 64;

/// How many times a ZoneTakeover may be passed along when the receiver's
/// zone doesn't merge with the shipped rectangle. Each hop either ends at
/// a mergeable sibling or hands the receiver's own zone one node further;
/// real fleets resolve in one or two hops, the budget just guarantees
/// termination in adversarial geometries.
constexpr std::uint8_t kCascadeBudget = 8;

void encode_endpoint(ByteWriter& w, const net::Endpoint& ep) {
  w.u32(ep.ip.value);
  w.u16(ep.port);
}

std::optional<net::Endpoint> parse_endpoint(ByteReader& r) {
  const auto ip = r.u32();
  const auto port = r.u16();
  if (!ip || !port) return std::nullopt;
  return net::Endpoint{net::Ipv4Address{*ip}, *port};
}

/// Items travel with their *remaining* TTL in milliseconds (0 = never
/// expires), so transfers during join/leave preserve expiry semantics.
void encode_items(ByteWriter& w, const std::vector<Item>& items, TimePoint now) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    encode_point(w, item.point);
    std::uint32_t ttl_ms = 0;
    if (item.expires < kTimeInfinity) {
      const Duration remaining = item.expires - now;
      ttl_ms = remaining > kZeroDuration
                   ? static_cast<std::uint32_t>(
                         std::min<double>(to_milliseconds(remaining), 4e9))
                   : 1;
    }
    w.u32(ttl_ms);
    w.u32(static_cast<std::uint32_t>(item.payload.size()));
    w.raw(item.payload);
  }
}

std::optional<std::vector<Item>> parse_items(ByteReader& r, TimePoint now) {
  const auto count = r.u32();
  if (!count) return std::nullopt;
  std::vector<Item> items;
  items.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto point = parse_point(r);
    if (!point) return std::nullopt;
    const auto ttl_ms = r.u32();
    const auto len = r.u32();
    if (!ttl_ms || !len) return std::nullopt;
    const auto payload = r.raw(*len);
    if (!payload) return std::nullopt;
    Item item{*point, ByteBuffer{payload->begin(), payload->end()}, kTimeInfinity};
    if (*ttl_ms != 0) item.expires = now + milliseconds(*ttl_ms);
    items.push_back(std::move(item));
  }
  return items;
}

double point_distance_sq(const Point& a, const Point& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.dims() && i < b.dims(); ++i) {
    const double d = a.coords[i] - b.coords[i];
    d2 += d * d;
  }
  return d2;
}

}  // namespace

CanNode::CanNode(sim::Simulation& sim, NodeId id, net::Endpoint self, SendFn send)
    : CanNode(sim, id, self, std::move(send), Config{}) {}

CanNode::CanNode(sim::Simulation& sim, NodeId id, net::Endpoint self, SendFn send,
                 Config config)
    : sim_(sim),
      id_(id),
      self_(self),
      send_(std::move(send)),
      config_(config),
      zone_(Zone::whole(config.dims)),
      hello_timer_(sim, config.hello_interval, [this] {
        prune_expired_items();
        announce_to_neighbors();
        // Drop neighbors that have gone silent for several periods. A
        // crashed node never sends a ZoneTakeover, so its zone would
        // otherwise stay orphaned forever — absorb any silent neighbor's
        // zone that merges with ours (ungraceful takeover).
        const TimePoint now = sim_.now();
        std::vector<NeighborInfo> dead;
        for (auto it = neighbors_.begin(); it != neighbors_.end();) {
          if (now - it->second.last_seen > config_.hello_interval * 3) {
            dead.push_back(it->second);
            it = neighbors_.erase(it);
          } else {
            ++it;
          }
        }
        if (config_.liveness_takeover && !dead.empty()) {
          bool grew = false;
          for (const auto& info : dead) {
            if (zone_.merged_with(info.zone)) {
              if (wins_takeover_election(info, dead)) {
                take_over_zone(info);
                grew = true;
              }
            } else if (!any_direct_takeover_candidate(info, dead) &&
                       wins_handover_election(info, dead)) {
              // Nobody bordering the victim can absorb its zone into a
              // rectangle. Don't adopt yet: stash the claim for another
              // liveness window so a falsely-declared-dead victim can
              // resurface before we seize its space.
              pending_handovers_.push_back(
                  PendingHandover{info, now + config_.hello_interval * 3});
            }
          }
          if (grew) {
            announce_to_neighbors();
            prune_non_adjacent();
          }
        }
        process_pending_handovers();
      }) {
  obs::MetricsRegistry& reg = sim_.metrics();
  const std::string inst = "can#" + std::to_string(id_);
  c_messages_sent_ = &reg.counter("can.messages_sent", inst);
  c_messages_received_ = &reg.counter("can.messages_received", inst);
  c_routed_forwarded_ = &reg.counter("can.routed_forwarded", inst);
  c_routed_delivered_ = &reg.counter("can.routed_delivered", inst);
  c_routed_dead_end_ = &reg.counter("can.routed_dead_end", inst);
  c_zone_splits_ = &reg.counter("can.zone_splits", inst);
  c_zone_takeovers_ = &reg.counter("can.zone_takeovers", inst);
  c_queries_timed_out_ = &reg.counter("can.queries_timed_out", inst);
  h_query_hops_ = &reg.histogram("can.query_hops", {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48});
  h_delivery_hops_ = &reg.histogram("can.delivery_hops", {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48});
  h_query_latency_ms_ = &reg.histogram(
      "can.query_latency_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
}

void CanNode::bootstrap() {
  zone_ = Zone::whole(config_.dims);
  joined_ = true;
  down_ = false;
  hello_timer_.start();
}

void CanNode::crash() {
  if (down_) return;
  down_ = true;
  joined_ = false;
  hello_timer_.stop();
  drop_pending_state();
  neighbors_.clear();
  items_.clear();
  pending_handovers_.clear();
  sim_.tracer().instant(obs::Category::kChaos, "can.crash",
                        "can#" + std::to_string(id_));
}

void CanNode::restart() {
  if (!down_) return;
  down_ = false;
  sim_.tracer().instant(obs::Category::kChaos, "can.restart",
                        "can#" + std::to_string(id_));
}

void CanNode::drop_pending_state() {
  // Move the maps out first: a callback may issue a fresh query, which
  // would otherwise mutate the map mid-iteration.
  auto queries = std::move(pending_queries_);
  pending_queries_.clear();
  for (auto& [qid, pending] : queries) {
    sim_.cancel(pending.deadline);
    pending.callback({});
  }
  auto aggs = std::move(aggregations_);
  aggregations_.clear();
  for (auto& [agg_id, agg] : aggs) sim_.cancel(agg.deadline);
}

bool CanNode::wins_takeover_election(const NeighborInfo& dead_info,
                                     const std::vector<NeighborInfo>& dead) const {
  // Every survivor around the victim holds the victim's last gossiped
  // neighbor list, so each computes the same candidate set — the
  // mergeable, believed-alive peers plus itself — and the smallest id
  // claims. Without this, two split-siblings of the victim (which need
  // not know each other) would both merge and overlap the space.
  NodeId winner = id_;
  for (const NeighborLink& peer : dead_info.peers) {
    if (peer.id == id_ || peer.id == dead_info.id || peer.id >= winner) continue;
    const bool also_dead =
        std::any_of(dead.begin(), dead.end(),
                    [&](const NeighborInfo& d) { return d.id == peer.id; });
    if (also_dead) continue;
    if (peer.zone.merged_with(dead_info.zone)) winner = peer.id;
  }
  return winner == id_;
}

bool CanNode::any_direct_takeover_candidate(
    const NeighborInfo& dead_info, const std::vector<NeighborInfo>& dead) const {
  // Callers reach this only when this node itself cannot merge, so the
  // scan covers the victim's gossiped peers alone.
  for (const NeighborLink& peer : dead_info.peers) {
    if (peer.id == id_ || peer.id == dead_info.id) continue;
    const bool also_dead =
        std::any_of(dead.begin(), dead.end(),
                    [&](const NeighborInfo& d) { return d.id == peer.id; });
    if (also_dead) continue;
    if (peer.zone.merged_with(dead_info.zone)) return true;
  }
  return false;
}

bool CanNode::wins_handover_election(const NeighborInfo& dead_info,
                                     const std::vector<NeighborInfo>& dead) const {
  // Nobody bordering the victim can absorb its zone into a rectangle
  // (classic CAN fragmentation — e.g. a half-space victim surrounded by
  // quadrants). Elect the smallest believed-alive id from the victim's
  // gossiped list unconditionally: every survivor computes the same
  // winner from the shared snapshot, so at most one node adopts. The
  // winner vacates its own zone via a cascading handover (see
  // adopt_zone_via_handover) and takes the victim's zone wholesale.
  NodeId winner = id_;
  for (const NeighborLink& peer : dead_info.peers) {
    if (peer.id == dead_info.id || peer.id >= winner) continue;
    const bool also_dead =
        std::any_of(dead.begin(), dead.end(),
                    [&](const NeighborInfo& d) { return d.id == peer.id; });
    if (also_dead) continue;
    winner = peer.id;
  }
  return winner == id_;
}

const NeighborInfo* CanNode::cascade_heir() const {
  // Who inherits this node's zone when it vacates: the smallest-id live
  // neighbor whose zone merges with ours (cascade ends there in one
  // hop); failing that, the smallest-id live neighbor outright — it will
  // adopt our rectangle and cascade its own zone onward.
  const NeighborInfo* mergeable = nullptr;
  const NeighborInfo* any = nullptr;
  for (const auto& [nid, info] : neighbors_) {
    if (any == nullptr || info.id < any->id) any = &info;
    if (zone_.merged_with(info.zone)) {
      if (mergeable == nullptr || info.id < mergeable->id) mergeable = &info;
    }
  }
  return mergeable != nullptr ? mergeable : any;
}

void CanNode::relinquish_and_rejoin(const net::Endpoint& via) {
  log::warn("can", "node {} relinquishes zone {} (conflicting claim) and re-joins",
            id_, zone_.to_string());
  sim_.tracer().instant(obs::Category::kChaos, "can.zone_relinquish",
                        "can#" + std::to_string(id_));
  hello_timer_.stop();
  joined_ = false;
  neighbors_.clear();
  items_.clear();
  pending_handovers_.clear();
  drop_pending_state();
  join(via);
}

void CanNode::process_pending_handovers() {
  WAV_PROF_SCOPE("can", "handover");
  const TimePoint now = sim_.now();
  constexpr double kVolumeEps = 1e-12;
  bool grew = false;
  for (auto it = pending_handovers_.begin(); it != pending_handovers_.end();) {
    if (now < it->ready) {
      ++it;
      continue;
    }
    // Adopt only if the victim's space is still unclaimed: a resurfaced
    // victim re-announces its old zone (so it shows up in neighbors_),
    // and any other claimant's grown zone would overlap it.
    bool claimed = zone_.overlap_volume(it->victim.zone) > kVolumeEps;
    for (const auto& [nid, info] : neighbors_) {
      if (claimed) break;
      claimed = info.zone.overlap_volume(it->victim.zone) > kVolumeEps;
    }
    if (!claimed && adopt_zone_via_handover(it->victim)) grew = true;
    it = pending_handovers_.erase(it);
  }
  if (grew) {
    announce_to_neighbors();
    prune_non_adjacent();
  }
}

bool CanNode::adopt_zone_via_handover(const NeighborInfo& dead) {
  const NeighborInfo* heir = cascade_heir();
  if (heir == nullptr) {
    log::warn("can", "node {} lost handover heir for zone {}", id_,
              zone_.to_string());
    return false;
  }
  send_zone_takeover(heir->endpoint, kCascadeBudget);
  zone_ = dead.zone;
  items_.clear();  // the old zone's items now live at the heir
  ++stats_.zone_takeovers;
  c_zone_takeovers_->inc();
  sim_.tracer().instant(obs::Category::kChaos, "can.zone_handover",
                        "can#" + std::to_string(id_),
                        "\"dead\":" + std::to_string(dead.id) +
                            ",\"heir\":" + std::to_string(heir->id));
  log::debug("can", "node {} handed its zone to {} and adopted dead neighbor {}",
             id_, heir->id, dead.id);
  // The victim's gossiped peers are the best guess at the adopted zone's
  // neighborhood; stale entries fall out via prune_non_adjacent.
  for (const NeighborLink& peer : dead.peers) {
    if (peer.id == id_ || peer.id == dead.id) continue;
    refresh_neighbor(peer.id, peer.endpoint, peer.zone);
  }
  return true;
}

void CanNode::take_over_zone(const NeighborInfo& dead) {
  WAV_PROF_SCOPE("can", "takeover");
  const auto merged = zone_.merged_with(dead.zone);
  if (!merged) return;
  zone_ = *merged;
  ++stats_.zone_takeovers;
  c_zone_takeovers_->inc();
  sim_.tracer().instant(obs::Category::kChaos, "can.zone_takeover",
                        "can#" + std::to_string(id_),
                        "\"dead\":" + std::to_string(dead.id));
  log::debug("can", "node {} absorbed zone of dead neighbor {}", id_, dead.id);
  // Inherit the victim's gossiped neighbors that abut the grown zone:
  // nodes adjacent only to the absorbed territory must learn the new
  // owner or greedy routes into it would dead-end at the old frontier.
  for (const NeighborLink& peer : dead.peers) {
    if (peer.id == id_ || peer.id == dead.id) continue;
    refresh_neighbor(peer.id, peer.endpoint, peer.zone);
  }
}

void CanNode::join(const net::Endpoint& seed) {
  const Point target = Point::random(sim_.rng(), config_.dims);
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kJoinRequest));
  w.u8(0);  // hops
  w.u64(id_);
  encode_endpoint(w, self_);
  encode_point(w, target);
  send(seed, net::Chunk::from_bytes(std::move(out)));
}

void CanNode::send(const net::Endpoint& to, net::Chunk msg) {
  ++stats_.messages_sent;
  c_messages_sent_->inc();
  send_(to, std::move(msg));
}

bool CanNode::route(const Point& target, const net::Chunk& msg, std::uint8_t hops) {
  WAV_PROF_SCOPE("can", "route");
  if (hops >= kMaxHops) {
    ++stats_.routed_dead_end;
    c_routed_dead_end_->inc();
    return false;
  }
  const double my_dist = zone_.distance_sq(target);
  const NeighborInfo* best = nullptr;
  double best_dist = my_dist;
  for (const auto& [nid, info] : neighbors_) {
    const double d = info.zone.distance_sq(target);
    if (d < best_dist) {
      best_dist = d;
      best = &info;
    }
  }
  if (best == nullptr) {
    ++stats_.routed_dead_end;
    c_routed_dead_end_->inc();
    log::debug("can", "node {} dead-ends routing to {}", id_, target.to_string());
    return false;
  }
  net::Chunk fwd = msg;
  fwd.real[1] = static_cast<std::byte>(hops + 1);
  ++stats_.routed_forwarded;
  c_routed_forwarded_->inc();
  send(best->endpoint, std::move(fwd));
  return true;
}

void CanNode::on_message(const net::Endpoint& from, const net::Chunk& msg) {
  if (down_) return;  // a crashed node hears nothing
  WAV_PROF_SCOPE("can", "on_message");
  ++stats_.messages_received;
  c_messages_received_->inc();
  if (msg.real.size() < 2) return;
  ByteReader r{msg.real};
  const auto type_raw = r.u8();
  const auto hops = r.u8();
  if (!type_raw || !hops) return;
  const auto type = static_cast<MsgType>(*type_raw);

  switch (type) {
    case MsgType::kJoinRequest: {
      // Peek the target to decide routing before full parsing.
      ByteReader peek{msg.real};
      (void)peek.u8();
      (void)peek.u8();
      (void)peek.u64();
      (void)parse_endpoint(peek);
      const auto target = parse_point(peek);
      if (!target) return;
      if (!zone_.contains(*target)) {
        route(*target, msg, *hops);
        return;
      }
      stats_.total_delivery_hops += *hops;
      ++stats_.routed_delivered;
      c_routed_delivered_->inc();
      h_delivery_hops_->observe(*hops);
      handle_join_request(msg);
      return;
    }
    case MsgType::kStore:
    case MsgType::kErase: {
      ByteReader peek{msg.real};
      (void)peek.u8();
      (void)peek.u8();
      const auto target = parse_point(peek);
      if (!target) return;
      if (!zone_.contains(*target)) {
        route(*target, msg, *hops);
        return;
      }
      stats_.total_delivery_hops += *hops;
      ++stats_.routed_delivered;
      c_routed_delivered_->inc();
      h_delivery_hops_->observe(*hops);
      if (type == MsgType::kStore) {
        handle_store(msg);
      } else {
        handle_erase(msg);
      }
      return;
    }
    case MsgType::kQuery: {
      ByteReader peek{msg.real};
      (void)peek.u8();
      (void)peek.u8();
      (void)peek.u64();
      (void)parse_endpoint(peek);
      const auto target = parse_point(peek);
      if (!target) return;
      if (!zone_.contains(*target)) {
        route(*target, msg, *hops);
        return;
      }
      stats_.total_delivery_hops += *hops;
      ++stats_.routed_delivered;
      c_routed_delivered_->inc();
      h_delivery_hops_->observe(*hops);
      h_query_hops_->observe(*hops);
      handle_query(msg);
      return;
    }
    case MsgType::kJoinResponse: {
      const auto zone = parse_zone(r);
      if (!zone) return;
      const auto n_neighbors = r.u16();
      if (!n_neighbors) return;
      zone_ = *zone;
      joined_ = true;
      neighbors_.clear();
      for (std::uint16_t i = 0; i < *n_neighbors; ++i) {
        const auto nid = r.u64();
        const auto ep = parse_endpoint(r);
        const auto nzone = parse_zone(r);
        if (!nid || !ep || !nzone) return;
        if (zone_.is_neighbor(*nzone)) {
          neighbors_[*nid] = NeighborInfo{*nid, *ep, *nzone, sim_.now(), {}};
        }
      }
      auto items = parse_items(r, sim_.now());
      if (items) {
        for (auto& item : *items) {
          if (item_observer_) item_observer_(item);
          items_.push_back(std::move(item));
        }
      }
      announce_to_neighbors();
      hello_timer_.start();
      return;
    }
    case MsgType::kNeighborHello: {
      const auto nid = r.u64();
      const auto ep = parse_endpoint(r);
      const auto nzone = parse_zone(r);
      if (!nid || !ep || !nzone || *nid == id_) return;
      if (joined_ && zone_.overlap_volume(*nzone) > 1e-12) {
        // The announcer claims space we also claim — someone absorbed a
        // zone whose owner wasn't actually dead. The redundant claimant
        // (the one whose zone lies inside the other's; ids break exact
        // ties) vacates and re-joins, restoring a proper tiling with no
        // coverage gap.
        const bool mine_inside = nzone->contains_zone(zone_);
        const bool theirs_inside = zone_.contains_zone(*nzone);
        if (mine_inside && (!theirs_inside || id_ > *nid)) {
          relinquish_and_rejoin(*ep);
          return;
        }
        if (theirs_inside) {
          // Keeper side: answer with our own claim immediately — the
          // contained claimant yields on receipt, and cannot echo back.
          send(*ep, net::Chunk::from_bytes(build_hello()));
        } else {
          // Neither zone contains the other: no safe unilateral fix and
          // no immediate counter-announce (two partial keepers would
          // ping-pong). The sender stays cached below, so periodic
          // hellos keep flowing until churn collapses the conflict into
          // a containment case.
          log::warn("can", "node {} sees unresolvable zone overlap with {}",
                    id_, *nid);
        }
      }
      std::vector<NeighborLink> peers;
      if (const auto count = r.u16()) {
        for (std::uint16_t i = 0; i < *count; ++i) {
          const auto pid = r.u64();
          const auto pep = parse_endpoint(r);
          const auto pzone = parse_zone(r);
          if (!pid || !pep || !pzone) break;
          peers.push_back(NeighborLink{*pid, *pep, *pzone});
        }
      }
      refresh_neighbor(*nid, *ep, *nzone, std::move(peers));
      return;
    }
    case MsgType::kNeighborBye: {
      const auto nid = r.u64();
      if (nid) neighbors_.erase(*nid);
      return;
    }
    case MsgType::kNeighborProbe: {
      const auto agg_id = r.u64();
      const auto owner_ep = parse_endpoint(r);
      const auto point = parse_point(r);
      const auto k = r.u16();
      if (!agg_id || !owner_ep || !point || !k) return;
      std::vector<Item> found;
      add_items_sorted_by_distance(*point, found, *k);
      ByteBuffer out;
      ByteWriter w{out};
      w.u8(static_cast<std::uint8_t>(MsgType::kNeighborProbeReply));
      w.u8(0);
      w.u64(*agg_id);
      encode_items(w, found, sim_.now());
      send(*owner_ep, net::Chunk::from_bytes(std::move(out)));
      return;
    }
    case MsgType::kNeighborProbeReply: {
      const auto agg_id = r.u64();
      if (!agg_id) return;
      const auto it = aggregations_.find(*agg_id);
      if (it == aggregations_.end()) return;
      auto items = parse_items(r, sim_.now());
      if (items) {
        for (auto& item : *items) it->second.collected.push_back(std::move(item));
      }
      if (it->second.outstanding > 0) --it->second.outstanding;
      if (it->second.outstanding == 0) finish_aggregation(*agg_id);
      return;
    }
    case MsgType::kQueryReply: {
      const auto query_id = r.u64();
      if (!query_id) return;
      const auto it = pending_queries_.find(*query_id);
      if (it == pending_queries_.end()) return;
      auto items = parse_items(r, sim_.now());
      auto callback = std::move(it->second.callback);
      sim_.cancel(it->second.deadline);
      h_query_latency_ms_->observe(to_milliseconds(sim_.now() - it->second.started));
      pending_queries_.erase(it);
      callback(items ? std::move(*items) : std::vector<Item>{});
      return;
    }
    case MsgType::kZoneTakeover: {
      const auto departing = r.u64();
      const auto zone = parse_zone(r);
      if (!departing || !zone) return;
      auto items = parse_items(r, sim_.now());
      neighbors_.erase(*departing);
      const auto merged = zone_.merged_with(*zone);
      if (merged) {
        zone_ = *merged;
      } else if (const NeighborInfo* heir =
                     *hops > 0 ? cascade_heir() : nullptr) {
        // The shipped rectangle doesn't merge with ours — a cascading
        // handover (the hops byte carries the remaining budget). Ship our
        // own zone + items onward first, then adopt the shipped zone
        // wholesale. Each hop either terminates at a mergeable sibling or
        // passes a strictly shrinking budget, so the chain is bounded.
        send_zone_takeover(heir->endpoint, static_cast<std::uint8_t>(*hops - 1));
        zone_ = *zone;
        items_.clear();
        ++stats_.zone_takeovers;
        c_zone_takeovers_->inc();
        sim_.tracer().instant(obs::Category::kChaos, "can.zone_cascade",
                              "can#" + std::to_string(id_),
                              "\"from\":" + std::to_string(*departing) +
                                  ",\"heir\":" + std::to_string(heir->id));
        log::debug("can", "node {} cascaded its zone to {} and adopted {}'s zone",
                   id_, heir->id, *departing);
      } else {
        log::warn("can", "node {} received unmergeable takeover zone", id_);
      }
      if (items) {
        for (auto& item : *items) {
          if (item_observer_) item_observer_(item);
          items_.push_back(std::move(item));
        }
      }
      // Inherit the departing node's neighbors that now abut our grown
      // zone, so nodes that were adjacent only to the old zone learn us.
      const auto inherited = r.u16();
      if (inherited) {
        for (std::uint16_t i = 0; i < *inherited; ++i) {
          const auto nid = r.u64();
          const auto ep = parse_endpoint(r);
          const auto nzone = parse_zone(r);
          if (!nid || !ep || !nzone) break;
          if (*nid != id_ && zone_.is_neighbor(*nzone) && !neighbors_.contains(*nid)) {
            neighbors_[*nid] = NeighborInfo{*nid, *ep, *nzone, sim_.now(), {}};
          }
        }
      }
      announce_to_neighbors();
      prune_non_adjacent();
      return;
    }
  }
  (void)from;
}

void CanNode::handle_join_request(const net::Chunk& msg) {
  ByteReader r{msg.real};
  (void)r.u8();
  (void)r.u8();
  const auto joiner_id = r.u64();
  const auto joiner_ep = parse_endpoint(r);
  const auto target = parse_point(r);
  if (!joiner_id || !joiner_ep || !target) return;
  if (*joiner_id == id_) return;

  auto [lower, upper] = zone_.split();
  c_zone_splits_->inc();
  sim_.tracer().instant(obs::Category::kCan, "can.zone_split",
                        "can#" + std::to_string(id_),
                        "\"joiner\":" + std::to_string(*joiner_id));
  const bool joiner_gets_lower = lower.contains(*target);
  const Zone joiner_zone = joiner_gets_lower ? lower : upper;
  const Zone my_zone = joiner_gets_lower ? upper : lower;

  // Partition items.
  std::vector<Item> transferred;
  std::vector<Item> kept;
  for (auto& item : items_) {
    if (joiner_zone.contains(item.point)) {
      transferred.push_back(std::move(item));
    } else {
      kept.push_back(std::move(item));
    }
  }
  items_ = std::move(kept);

  // Build the join response: assigned zone + my neighbor table + myself.
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kJoinResponse));
  w.u8(0);
  encode_zone(w, joiner_zone);
  w.u16(static_cast<std::uint16_t>(neighbors_.size() + 1));
  w.u64(id_);
  encode_endpoint(w, self_);
  encode_zone(w, my_zone);
  for (const auto& [nid, info] : neighbors_) {
    w.u64(nid);
    encode_endpoint(w, info.endpoint);
    encode_zone(w, info.zone);
  }
  encode_items(w, transferred, sim_.now());

  zone_ = my_zone;
  neighbors_[*joiner_id] = NeighborInfo{*joiner_id, *joiner_ep, joiner_zone, sim_.now(), {}};
  // Announce the shrunken zone to the *old* neighbor set first so nodes
  // that are no longer adjacent drop us; then prune them locally.
  announce_to_neighbors();
  prune_non_adjacent();

  send(*joiner_ep, net::Chunk::from_bytes(std::move(out)));
}

void CanNode::handle_store(const net::Chunk& msg) {
  ByteReader r{msg.real};
  (void)r.u8();
  (void)r.u8();
  const auto point = parse_point(r);
  if (!point) return;
  const auto ttl_ms = r.u32();
  const auto len = r.u32();
  if (!ttl_ms || !len) return;
  const auto payload = r.raw(*len);
  if (!payload) return;
  Item item{*point, ByteBuffer{payload->begin(), payload->end()}, kTimeInfinity};
  if (*ttl_ms != 0) item.expires = sim_.now() + milliseconds(*ttl_ms);
  // Replace an existing record with identical payload location semantics
  // (same point + same leading 8 payload bytes act as the record key).
  if (item_observer_) item_observer_(item);
  items_.push_back(std::move(item));
}

void CanNode::handle_erase(const net::Chunk& msg) {
  ByteReader r{msg.real};
  (void)r.u8();
  (void)r.u8();
  const auto point = parse_point(r);
  if (!point) return;
  const auto len = r.u32();
  if (!len) return;
  const auto payload = r.raw(*len);
  if (!payload) return;
  const ByteBuffer needle{payload->begin(), payload->end()};
  std::erase_if(items_, [&](const Item& item) {
    return item.point == *point && item.payload == needle;
  });
}

void CanNode::handle_query(const net::Chunk& msg) {
  WAV_PROF_SCOPE("can", "query");
  ByteReader r{msg.real};
  (void)r.u8();
  (void)r.u8();
  const auto query_id = r.u64();
  const auto requester = parse_endpoint(r);
  const auto point = parse_point(r);
  const auto k = r.u16();
  if (!query_id || !requester || !point || !k) return;

  std::vector<Item> found;
  add_items_sorted_by_distance(*point, found, *k);

  const bool need_expansion =
      found.size() < *k && config_.neighbor_expansion > 0 && !neighbors_.empty();
  if (!need_expansion) {
    ByteBuffer out;
    ByteWriter w{out};
    w.u8(static_cast<std::uint8_t>(MsgType::kQueryReply));
    w.u8(0);
    w.u64(*query_id);
    encode_items(w, found, sim_.now());
    send(*requester, net::Chunk::from_bytes(std::move(out)));
    return;
  }

  const std::uint64_t agg_id = next_agg_id_++;
  Aggregation agg;
  agg.query_id = *query_id;
  agg.requester = *requester;
  agg.point = *point;
  agg.k = *k;
  agg.collected = std::move(found);
  agg.outstanding = neighbors_.size();
  agg.deadline = sim_.schedule_after(config_.query_timeout,
                                     [this, agg_id] { finish_aggregation(agg_id); });
  aggregations_[agg_id] = std::move(agg);

  for (const auto& [nid, info] : neighbors_) {
    ByteBuffer probe;
    ByteWriter w{probe};
    w.u8(static_cast<std::uint8_t>(MsgType::kNeighborProbe));
    w.u8(0);
    w.u64(agg_id);
    encode_endpoint(w, self_);
    encode_point(w, *point);
    w.u16(static_cast<std::uint16_t>(*k));
    send(info.endpoint, net::Chunk::from_bytes(std::move(probe)));
  }
}

void CanNode::finish_aggregation(std::uint64_t agg_id) {
  const auto it = aggregations_.find(agg_id);
  if (it == aggregations_.end()) return;
  Aggregation agg = std::move(it->second);
  aggregations_.erase(it);
  sim_.cancel(agg.deadline);

  std::sort(agg.collected.begin(), agg.collected.end(),
            [&](const Item& a, const Item& b) {
              return point_distance_sq(a.point, agg.point) <
                     point_distance_sq(b.point, agg.point);
            });
  // De-duplicate identical records picked up from both owner and probes.
  agg.collected.erase(
      std::unique(agg.collected.begin(), agg.collected.end(),
                  [](const Item& a, const Item& b) {
                    return a.point == b.point && a.payload == b.payload;
                  }),
      agg.collected.end());
  if (agg.collected.size() > agg.k) agg.collected.resize(agg.k);

  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kQueryReply));
  w.u8(0);
  w.u64(agg.query_id);
  encode_items(w, agg.collected, sim_.now());
  send(agg.requester, net::Chunk::from_bytes(std::move(out)));
}

void CanNode::store(const Point& point, ByteBuffer payload, Duration ttl) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kStore));
  w.u8(0);
  encode_point(w, point);
  w.u32(ttl > kZeroDuration
            ? static_cast<std::uint32_t>(std::min<double>(to_milliseconds(ttl), 4e9))
            : 0);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  const net::Chunk msg = net::Chunk::from_bytes(std::move(out));
  if (zone_.contains(point)) {
    stats_.total_delivery_hops += 0;
    ++stats_.routed_delivered;
    handle_store(msg);
  } else {
    route(point, msg, 0);
  }
}

void CanNode::erase(const Point& point, ByteBuffer payload_equals) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kErase));
  w.u8(0);
  encode_point(w, point);
  w.u32(static_cast<std::uint32_t>(payload_equals.size()));
  w.raw(payload_equals);
  const net::Chunk msg = net::Chunk::from_bytes(std::move(out));
  if (zone_.contains(point)) {
    handle_erase(msg);
  } else {
    route(point, msg, 0);
  }
}

void CanNode::query(const Point& point, std::size_t k, QueryCallback callback) {
  const std::uint64_t qid = next_query_id_++;
  // A reply can die anywhere (crashed owner, routing dead end mid-path,
  // lost datagram); the deadline guarantees the callback always fires.
  const sim::EventId deadline = sim_.schedule_after(
      config_.query_timeout * 4, [this, qid] { expire_query(qid); });
  pending_queries_[qid] = PendingQuery{std::move(callback), deadline, sim_.now()};

  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kQuery));
  w.u8(0);
  w.u64(qid);
  encode_endpoint(w, self_);
  encode_point(w, point);
  w.u16(static_cast<std::uint16_t>(k));
  const net::Chunk msg = net::Chunk::from_bytes(std::move(out));
  if (zone_.contains(point)) {
    handle_query(msg);
  } else if (!route(point, msg, 0)) {
    // Dead end: answer with nothing rather than hang the caller.
    const auto it = pending_queries_.find(qid);
    if (it != pending_queries_.end()) {
      auto cb = std::move(it->second.callback);
      sim_.cancel(it->second.deadline);
      pending_queries_.erase(it);
      cb({});
    }
  }
}

void CanNode::expire_query(std::uint64_t query_id) {
  const auto it = pending_queries_.find(query_id);
  if (it == pending_queries_.end()) return;
  auto callback = std::move(it->second.callback);
  pending_queries_.erase(it);
  ++stats_.queries_timed_out;
  c_queries_timed_out_->inc();
  callback({});
}

void CanNode::send_zone_takeover(const net::Endpoint& to,
                                 std::uint8_t cascade_budget) {
  ByteBuffer out;
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(MsgType::kZoneTakeover));
  w.u8(cascade_budget);  // hops byte doubles as the remaining cascade budget
  w.u64(id_);
  encode_zone(w, zone_);
  encode_items(w, items_, sim_.now());
  w.u16(static_cast<std::uint16_t>(neighbors_.size()));
  for (const auto& [nid, info] : neighbors_) {
    w.u64(nid);
    encode_endpoint(w, info.endpoint);
    encode_zone(w, info.zone);
  }
  send(to, net::Chunk::from_bytes(std::move(out)));
}

bool CanNode::leave() {
  const NeighborInfo* sibling = nullptr;
  for (const auto& [nid, info] : neighbors_) {
    if (zone_.merged_with(info.zone)) {
      sibling = &info;
      break;
    }
  }
  if (sibling == nullptr) return false;

  send_zone_takeover(sibling->endpoint, kCascadeBudget);

  for (const auto& [nid, info] : neighbors_) {
    if (nid == sibling->id) continue;
    ByteBuffer bye;
    ByteWriter bw{bye};
    bw.u8(static_cast<std::uint8_t>(MsgType::kNeighborBye));
    bw.u8(0);
    bw.u64(id_);
    send(info.endpoint, net::Chunk::from_bytes(std::move(bye)));
  }

  joined_ = false;
  hello_timer_.stop();
  neighbors_.clear();
  items_.clear();
  pending_handovers_.clear();
  return true;
}

ByteBuffer CanNode::build_hello() const {
  ByteBuffer hello;
  ByteWriter w{hello};
  w.u8(static_cast<std::uint8_t>(MsgType::kNeighborHello));
  w.u8(0);
  w.u64(id_);
  encode_endpoint(w, self_);
  encode_zone(w, zone_);
  // Gossip our neighbor set (CAN-paper style): receivers cache it so
  // that if we die silently they can elect a unique takeover claimant
  // and introduce the winner to our other neighbors.
  w.u16(static_cast<std::uint16_t>(neighbors_.size()));
  for (const auto& [nid, info] : neighbors_) {
    w.u64(nid);
    encode_endpoint(w, info.endpoint);
    encode_zone(w, info.zone);
  }
  return hello;
}

void CanNode::announce_to_neighbors() {
  const ByteBuffer hello = build_hello();
  for (const auto& [nid, info] : neighbors_) {
    send(info.endpoint, net::Chunk::from_bytes(ByteBuffer{hello}));
  }
}

void CanNode::announce_to(const net::Endpoint& ep) {
  if (!joined_ || down_ || ep == self_) return;
  send(ep, net::Chunk::from_bytes(build_hello()));
}

void CanNode::refresh_neighbor(NodeId nid, const net::Endpoint& ep, const Zone& zone,
                               std::vector<NeighborLink> peers) {
  // Overlapping zones are not CAN neighbors but ARE conflicting claims;
  // keep them cached so the hello channel that resolves the conflict
  // (relinquish-and-rejoin) stays open.
  if (zone_.is_neighbor(zone) || zone_.overlap_volume(zone) > 1e-12) {
    if (peers.empty()) {
      // Gossip rides only on hellos; a gossip-less refresh (join,
      // takeover inheritance) must not wipe the cached list.
      if (const auto it = neighbors_.find(nid); it != neighbors_.end()) {
        peers = std::move(it->second.peers);
      }
    }
    neighbors_[nid] = NeighborInfo{nid, ep, zone, sim_.now(), std::move(peers)};
  } else {
    neighbors_.erase(nid);
  }
}

void CanNode::prune_non_adjacent() {
  for (auto it = neighbors_.begin(); it != neighbors_.end();) {
    // A zone that *overlaps* ours is not a CAN neighbor — it's a
    // conflicting ownership claim. Keep the entry anyway: the hellos we
    // keep sending it are what drive the relinquish-and-rejoin conflict
    // resolution; pruning it would freeze the conflict in place.
    if (!zone_.is_neighbor(it->second.zone) &&
        zone_.overlap_volume(it->second.zone) <= 1e-12) {
      it = neighbors_.erase(it);
    } else {
      ++it;
    }
  }
}

void CanNode::prune_expired_items() {
  const TimePoint now = sim_.now();
  std::erase_if(items_, [now](const Item& item) { return item.expires <= now; });
}

void CanNode::add_items_sorted_by_distance(const Point& p, std::vector<Item>& out,
                                           std::size_t k) const {
  const TimePoint now = sim_.now();
  out.clear();
  for (const auto& item : items_) {
    if (item.expires > now) out.push_back(item);
  }
  std::sort(out.begin(), out.end(), [&](const Item& a, const Item& b) {
    return point_distance_sq(a.point, p) < point_distance_sq(b.point, p);
  });
  if (out.size() > k) out.resize(k);
}

}  // namespace wav::can
