#include "vm/vm.hpp"

#include <algorithm>
#include <cmath>

namespace wav::vm {

VirtualMachine::VirtualMachine(sim::Simulation& sim, VmConfig config)
    : sim_(sim),
      config_(std::move(config)),
      nic_(wavnet::make_mac(config_.virtual_ip.value)),
      stack_(sim, nic_, config_.virtual_ip, config_.virtual_subnet),
      icmp_(stack_),
      cpu_gflops_(config_.cpu_gflops),
      last_dirty_update_(sim.now()),
      dirty_timer_(sim, milliseconds(100), [this] { accumulate_dirty(); }) {
  dirty_timer_.start();
}

std::uint64_t VirtualMachine::total_pages() const noexcept {
  return config_.memory.bytes / config_.page_size;
}

std::uint64_t VirtualMachine::hot_pages() const noexcept {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.hot_fraction *
                                    static_cast<double>(total_pages())));
}

void VirtualMachine::pause() {
  if (!running_) return;
  accumulate_dirty();
  running_ = false;
  nic_.set_enabled(false);
  dirty_timer_.stop();
}

void VirtualMachine::resume() {
  if (running_) return;
  running_ = true;
  nic_.set_enabled(true);
  last_dirty_update_ = sim_.now();
  dirty_timer_.start();
}

void VirtualMachine::accumulate_dirty() {
  const TimePoint now = sim_.now();
  const double dt = to_seconds(now - last_dirty_update_);
  last_dirty_update_ = now;
  if (!running_ || dt <= 0.0) return;

  // Re-dirtying a hot page that is already dirty adds nothing, so the
  // hot unique-dirty count saturates toward the working-set size:
  //   h' = W - (W - h) * exp(-r * dt / W)
  // Cold pages outside the working set dirty at ~2% of the rate, which
  // is what keeps long migrations from ever fully converging.
  const double W = static_cast<double>(hot_pages());
  hot_dirty_ = W - (W - hot_dirty_) * std::exp(-config_.dirty_pages_per_sec * dt / W);
  const double cold_cap = static_cast<double>(total_pages()) - W;
  cold_dirty_ =
      std::min(cold_cap, cold_dirty_ + 0.02 * config_.dirty_pages_per_sec * dt);
  dirty_pages_ = static_cast<std::uint64_t>(hot_dirty_ + cold_dirty_);
}

std::uint64_t VirtualMachine::take_dirty_snapshot() {
  accumulate_dirty();
  const std::uint64_t snapshot = dirty_pages_;
  dirty_pages_ = 0;
  hot_dirty_ = 0.0;
  cold_dirty_ = 0.0;
  return snapshot;
}

void VirtualMachine::mark_all_dirty() {
  dirty_pages_ = total_pages();
  hot_dirty_ = static_cast<double>(hot_pages());
  cold_dirty_ = static_cast<double>(total_pages() - hot_pages());
}

}  // namespace wav::vm
