// Virtual machine model: a guest with memory pages, a write-working-set
// dirty-page process (what pre-copy migration fights against), a virtual
// NIC + IP stack on the WAVNet LAN, and a CPU speed that follows the
// physical host it currently runs on.
#pragma once

#include <string>

#include "sim/simulation.hpp"
#include "stack/icmp.hpp"
#include "wavnet/bridge.hpp"
#include "wavnet/virtual_ip.hpp"

namespace wav::vm {

struct VmConfig {
  std::string name{"vm"};
  ByteSize memory{mebibytes(256)};
  std::uint32_t page_size{4096};
  /// Fraction of memory in the writable working set ("hot" pages that
  /// keep getting re-dirtied while the guest runs).
  double hot_fraction{0.02};
  /// Page-dirty rate of the running guest, pages/second.
  double dirty_pages_per_sec{200.0};
  net::Ipv4Address virtual_ip{};
  net::Ipv4Subnet virtual_subnet{net::Ipv4Address::from_octets(10, 10, 0, 0), 16};
  double cpu_gflops{4.0};
};

class VirtualMachine {
 public:
  VirtualMachine(sim::Simulation& sim, VmConfig config);

  [[nodiscard]] const VmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
  [[nodiscard]] wavnet::VirtualNic& nic() noexcept { return nic_; }
  [[nodiscard]] wavnet::VirtualIpStack& stack() noexcept { return stack_; }
  [[nodiscard]] net::Ipv4Address ip() const noexcept { return stack_.ip_address(); }

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Pause stops the guest: no dirtying, and the NIC drops frames (open
  /// TCP connections to the VM retransmit through the gap).
  void pause();
  void resume();

  /// CPU speed on the current physical host (the MPI workloads scale
  /// compute time by this; migration to a faster host speeds the rank up).
  [[nodiscard]] double cpu_gflops() const noexcept { return cpu_gflops_; }
  void set_cpu_gflops(double gflops) noexcept { cpu_gflops_ = gflops; }

  // --- dirty-page model (driven by a 100 ms sampling timer) --------------
  [[nodiscard]] std::uint64_t total_pages() const noexcept;
  [[nodiscard]] std::uint64_t hot_pages() const noexcept;
  [[nodiscard]] std::uint64_t dirty_pages() const noexcept { return dirty_pages_; }
  [[nodiscard]] ByteSize dirty_bytes() const noexcept {
    return ByteSize{dirty_pages_ * config_.page_size};
  }

  /// Consumes the current dirty set (a pre-copy round snapshot).
  std::uint64_t take_dirty_snapshot();

  /// Marks the whole address space dirty (round 0 of pre-copy).
  void mark_all_dirty();

 private:
  void accumulate_dirty();

  sim::Simulation& sim_;
  VmConfig config_;
  wavnet::VirtualNic nic_;
  wavnet::VirtualIpStack stack_;
  stack::IcmpLayer icmp_;  // guests answer ping out of the box
  bool running_{true};
  double cpu_gflops_;
  std::uint64_t dirty_pages_{0};
  double hot_dirty_{0.0};
  double cold_dirty_{0.0};
  TimePoint last_dirty_update_{};
  sim::PeriodicTimer dirty_timer_;
};

}  // namespace wav::vm
