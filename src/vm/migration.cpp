#include "vm/migration.hpp"

#include "common/log.hpp"

namespace wav::vm {

MigrationTask::MigrationTask(VirtualMachine& vm, wavnet::SoftwareBridge& source_bridge,
                             wavnet::SoftwareBridge& destination_bridge,
                             tcp::TcpLayer& source_tcp, tcp::TcpLayer& destination_tcp,
                             net::Ipv4Address destination_ip, double destination_gflops,
                             MigrationConfig config, DoneHandler done)
    : vm_(vm),
      source_bridge_(source_bridge),
      destination_bridge_(destination_bridge),
      source_tcp_(source_tcp),
      destination_tcp_(destination_tcp),
      destination_ip_(destination_ip),
      destination_gflops_(destination_gflops),
      config_(config),
      done_(std::move(done)),
      sim_(source_tcp.sim()),
      ack_poll_(sim_, milliseconds(50), [this] {
        if (ack_continuation_ && conn_ && conn_->stats().bytes_acked >= ack_target_) {
          ack_poll_.stop();
          auto continuation = std::move(ack_continuation_);
          ack_continuation_ = nullptr;
          continuation();
        }
      }) {}

MigrationTask::~MigrationTask() {
  destination_tcp_.close_listener(config_.port);
}

void MigrationTask::start() {
  started_ = true;
  start_time_ = sim_.now();

  // Destination side: accept the page stream, parse framed rounds, and
  // perform the activation handshake when the final copy lands.
  destination_tcp_.listen(
      config_.port,
      [this](tcp::TcpConnection::Ptr conn) {
    receiver_conn_ = conn;
    receiver_framer_ = std::make_unique<net::MessageFramer>(
        [this](const net::FrameHeader& header, std::vector<net::Chunk>) {
          on_receiver_message(header);
        });
        conn->on_data([this, conn](const std::vector<net::Chunk>& chunks) {
          receiver_framer_->push(chunks);
        });
      },
      config_.transport);

  conn_ = source_tcp_.connect({destination_ip_, config_.port}, config_.transport);
  conn_->on_closed([this](tcp::CloseReason reason) {
    if (!finished_ && reason != tcp::CloseReason::kNormal) finish(false);
  });
  conn_->on_established([this] {
    if (!config_.precopy) {
      // Naive stop-and-copy: the guest is down for the entire transfer.
      vm_.pause();
      pause_time_ = sim_.now();
      const std::uint64_t bytes =
          vm_.total_pages() * vm_.config().page_size + config_.cpu_state.bytes;
      for (auto& chunk : net::frame_message(
               {static_cast<std::uint8_t>(FrameType::kFinal), 0, 0},
               net::Chunk::virtual_bytes(bytes))) {
        conn_->send(std::move(chunk));
      }
      bytes_queued_ += net::kFrameHeaderBytes + bytes;
      return;
    }
    // Round 0: the whole address space.
    round_ = 0;
    vm_.take_dirty_snapshot();  // reset the dirty set; round 0 covers everything
    send_round(vm_.total_pages());
  });
}

void MigrationTask::send_round(std::uint64_t pages) {
  const std::uint64_t bytes = pages * vm_.config().page_size;
  round_start_ = sim_.now();
  log::debug("migration", "{}: round {} pushes {} pages", vm_.name(), round_, pages);
  for (auto& chunk : net::frame_message(
           {static_cast<std::uint8_t>(FrameType::kRound), round_, 0},
           net::Chunk::virtual_bytes(bytes))) {
    conn_->send(std::move(chunk));
  }
  bytes_queued_ += net::kFrameHeaderBytes + bytes;
  previous_round_bytes_ = bytes;
  wait_for_ack(bytes_queued_, [this] { next_round(); });
}

void MigrationTask::wait_for_ack(std::uint64_t target_acked, std::function<void()> then) {
  ack_target_ = target_acked;
  ack_continuation_ = std::move(then);
  ack_poll_.start_after(kZeroDuration);
}

void MigrationTask::next_round() {
  // The round that just drained its ack target is complete.
  sim_.tracer().complete(obs::Category::kMigration, "migration.round", round_start_,
                         vm_.name(), "\"round\":" + std::to_string(round_));
  ++round_;
  const std::uint64_t dirty = vm_.take_dirty_snapshot();
  const std::uint64_t dirty_bytes = dirty * vm_.config().page_size;

  const bool small_enough = dirty_bytes <= config_.stop_threshold.bytes;
  const bool no_progress =
      previous_round_bytes_ > 0 &&
      static_cast<double>(dirty_bytes) >=
          config_.min_progress * static_cast<double>(previous_round_bytes_);
  const bool budget_exhausted = round_ >= config_.max_rounds;

  if (small_enough || no_progress || budget_exhausted) {
    // Stop-and-copy: the guest pauses; everything still dirty (the
    // snapshot we just took) plus CPU state goes over in one burst.
    vm_.pause();
    pause_time_ = sim_.now();
    sim_.tracer().instant(obs::Category::kMigration, "migration.pause", vm_.name(),
                          "\"round\":" + std::to_string(round_));
    const std::uint64_t final_bytes =
        dirty_bytes + config_.cpu_state.bytes;
    log::debug("migration", "{}: stop-and-copy, {} final bytes after {} rounds",
               vm_.name(), final_bytes, round_);
    for (auto& chunk : net::frame_message(
             {static_cast<std::uint8_t>(FrameType::kFinal), round_, 0},
             net::Chunk::virtual_bytes(final_bytes))) {
      conn_->send(std::move(chunk));
    }
    bytes_queued_ += net::kFrameHeaderBytes + final_bytes;
    // Completion is driven by the receiver's kDone message.
    return;
  }
  send_round(dirty);
}

void MigrationTask::on_receiver_message(const net::FrameHeader& header) {
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kRound:
      return;  // intermediate round landed; nothing to do on the receiver
    case FrameType::kFinal: {
      // All state present: activate the guest at the destination after
      // the fixed activation cost.
      sim_.schedule_after(config_.activation_delay, [this] {
        vm_.nic().bridge()->detach(vm_.nic());
        destination_bridge_.attach(vm_.nic());
        vm_.set_cpu_gflops(destination_gflops_);
        vm_.resume();
        result_.downtime = sim_.now() - pause_time_;
        sim_.tracer().complete(obs::Category::kMigration, "migration.downtime",
                               pause_time_, vm_.name());
        sim_.metrics()
            .histogram("migration.downtime_ms",
                       {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000})
            .observe(to_milliseconds(result_.downtime));
        // The unsolicited ARP broadcast that repoints the whole LAN.
        vm_.stack().announce_gratuitous_arp();
        // Tell the source the handover is complete.
        if (receiver_conn_) {
          for (auto& chunk : net::frame_message(
                   {static_cast<std::uint8_t>(FrameType::kDone), 0, 0},
                   net::Chunk::virtual_bytes(0))) {
            receiver_conn_->send(std::move(chunk));
          }
        }
        finish(true);
      });
      return;
    }
    case FrameType::kDone:
      return;
  }
}

void MigrationTask::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  ack_poll_.stop();
  result_.ok = ok;
  result_.total_time = sim_.now() - start_time_;
  result_.rounds = round_ + 1;
  result_.bytes_transferred = ByteSize{bytes_queued_};
  sim_.metrics().counter(ok ? "migration.completed" : "migration.failed").inc();
  sim_.tracer().complete(obs::Category::kMigration, "migration.total", start_time_,
                         vm_.name(),
                         "\"ok\":" + std::string(ok ? "true" : "false") +
                             ",\"rounds\":" + std::to_string(result_.rounds));
  if (conn_) conn_->close();
  destination_tcp_.close_listener(config_.port);
  if (done_) done_(result_);
}

}  // namespace wav::vm
