// Live VM migration over the virtual network (paper §II.C), implementing
// the Xen pre-copy algorithm (Clark et al., NSDI'05):
//
//   round 0        : push every memory page while the guest keeps running
//   rounds 1..n    : push the pages dirtied during the previous round
//   stop-and-copy  : when the dirty set is small / stops shrinking / the
//                    round budget is exhausted, pause the guest, push the
//                    final dirty set + CPU state
//   activation     : attach the vNIC to the destination bridge, resume,
//                    flood a gratuitous ARP so every WAVNet peer's bridge
//                    and ARP caches repoint at the new location
//
// The page stream travels over a real (simulated) TCP connection on the
// virtual plane, so migration time inherits exactly the bandwidth/RTT
// behaviour of WAVNet or IPOP underneath — which is what Table V and
// Figures 9-10 measure.
#pragma once

#include <functional>

#include "net/framing.hpp"
#include "tcp/tcp.hpp"
#include "vm/vm.hpp"

namespace wav::vm {

struct MigrationConfig {
  std::uint16_t port{8002};
  /// False = naive stop-and-copy: pause the guest first, then move the
  /// whole address space (the ablation baseline for pre-copy).
  bool precopy{true};
  /// Transport settings of the migration TCP connection. Xen-era
  /// migration daemons used fixed ~128 KiB socket buffers with no window
  /// autotuning, which is why the paper's Table V times grow with RTT.
  tcp::TcpConfig transport{.receive_buffer = 128 * 1024};
  std::uint32_t max_rounds{30};
  /// Stop-and-copy once the next round would move fewer bytes than this.
  ByteSize stop_threshold{mebibytes(1)};
  /// ...or when a round shrinks by less than this factor vs the previous.
  double min_progress{0.9};
  ByteSize cpu_state{kibibytes(64)};
  /// Fixed destination-side activation cost after the last byte arrives.
  Duration activation_delay{milliseconds(200)};
};

struct MigrationResult {
  bool ok{false};
  Duration total_time{};
  Duration downtime{};
  std::uint32_t rounds{0};
  ByteSize bytes_transferred{};
};

/// Orchestrates one migration. The object embodies both endpoints'
/// control logic (source pre-copy loop, destination receiver); the page
/// stream itself crosses the simulated network.
class MigrationTask {
 public:
  using DoneHandler = std::function<void(const MigrationResult&)>;

  MigrationTask(VirtualMachine& vm, wavnet::SoftwareBridge& source_bridge,
                wavnet::SoftwareBridge& destination_bridge, tcp::TcpLayer& source_tcp,
                tcp::TcpLayer& destination_tcp, net::Ipv4Address destination_ip,
                double destination_gflops, MigrationConfig config, DoneHandler done);
  ~MigrationTask();

  MigrationTask(const MigrationTask&) = delete;
  MigrationTask& operator=(const MigrationTask&) = delete;

  void start();

  [[nodiscard]] bool in_progress() const noexcept { return started_ && !finished_; }
  [[nodiscard]] const MigrationResult& result() const noexcept { return result_; }

 private:
  enum class FrameType : std::uint8_t { kRound = 1, kFinal = 2, kDone = 3 };

  void send_round(std::uint64_t pages);
  void wait_for_ack(std::uint64_t target_acked, std::function<void()> then);
  void next_round();
  void stop_and_copy();
  void on_receiver_message(const net::FrameHeader& header);
  void finish(bool ok);

  VirtualMachine& vm_;
  wavnet::SoftwareBridge& source_bridge_;
  wavnet::SoftwareBridge& destination_bridge_;
  tcp::TcpLayer& source_tcp_;
  tcp::TcpLayer& destination_tcp_;
  net::Ipv4Address destination_ip_;
  double destination_gflops_;
  MigrationConfig config_;
  DoneHandler done_;

  sim::Simulation& sim_;
  tcp::TcpConnection::Ptr conn_;
  tcp::TcpConnection::Ptr receiver_conn_;
  std::unique_ptr<net::MessageFramer> receiver_framer_;

  bool started_{false};
  bool finished_{false};
  std::uint32_t round_{0};
  std::uint64_t previous_round_bytes_{0};
  std::uint64_t bytes_queued_{0};
  TimePoint start_time_{};
  TimePoint pause_time_{};
  TimePoint round_start_{};
  sim::PeriodicTimer ack_poll_;
  std::uint64_t ack_target_{0};
  std::function<void()> ack_continuation_;
  MigrationResult result_;
};

}  // namespace wav::vm
