#include "net/address.hpp"

#include <charconv>
#include <cstdio>

namespace wav::net {
namespace {

std::optional<std::uint8_t> parse_u8(std::string_view s) {
  std::uint32_t v = 0;
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end || v > 255) return std::nullopt;
  return static_cast<std::uint8_t>(v);
}

}  // namespace

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::optional<MacAddress> MacAddress::parse(std::string_view s) {
  MacAddress m;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (pos + 2 > s.size()) return std::nullopt;
    std::uint32_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data() + pos, s.data() + pos + 2, v, 16);
    if (ec != std::errc{} || ptr != s.data() + pos + 2) return std::nullopt;
    m.octets[i] = static_cast<std::uint8_t>(v);
    pos += 2;
    if (i < 5) {
      if (pos >= s.size() || (s[pos] != ':' && s[pos] != '-')) return std::nullopt;
      ++pos;
    }
  }
  if (pos != s.size()) return std::nullopt;
  return m;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF, (value >> 16) & 0xFF,
                (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  std::array<std::uint8_t, 4> oct{};
  std::size_t start = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t dot = i < 3 ? s.find('.', start) : s.size();
    if (dot == std::string_view::npos) return std::nullopt;
    const auto v = parse_u8(s.substr(start, dot - start));
    if (!v) return std::nullopt;
    oct[i] = *v;
    start = dot + 1;
  }
  return from_octets(oct[0], oct[1], oct[2], oct[3]);
}

std::string Ipv4Subnet::to_string() const {
  return network.to_string() + "/" + std::to_string(prefix_len);
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace wav::net
