// Structured packet model shared by the physical underlay and the WAVNet
// virtual plane.
//
// Headers are modeled as typed structs with exact on-wire sizes (and real
// byte codecs in net/codec.hpp); bulk payload is carried as `Chunk`s that
// are either real bytes (control messages, HTTP headers) or virtual byte
// counts (bulk transfers, VM memory pages). A 256 MB migration therefore
// costs O(#segments) memory, while every header field the protocols touch
// is real.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "net/address.hpp"

namespace wav::net {

/// A contiguous run of payload bytes: real content or a virtual length.
/// Exactly one of the two is non-empty.
struct Chunk {
  ByteBuffer real;
  std::uint64_t virtual_size{0};

  [[nodiscard]] static Chunk from_bytes(ByteBuffer b) { return Chunk{std::move(b), 0}; }
  [[nodiscard]] static Chunk from_string(std::string_view s) {
    return Chunk{to_bytes(s), 0};
  }
  [[nodiscard]] static Chunk virtual_bytes(std::uint64_t n) { return Chunk{{}, n}; }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return real.size() + virtual_size;
  }
  [[nodiscard]] bool is_virtual() const noexcept { return virtual_size > 0; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Splits off the first `n` bytes into the returned chunk, keeping the
  /// remainder. n must be <= size().
  Chunk split_front(std::uint64_t n);
};

[[nodiscard]] std::uint64_t total_size(const std::vector<Chunk>& chunks) noexcept;

/// FIFO of stream bytes preserving chunk boundaries. The TCP send path and
/// app-level receive reassembly are built on it.
class ChunkQueue {
 public:
  void push(Chunk c);
  /// Pops up to `max_bytes`, splitting the head chunk if needed. Returns
  /// the extracted chunks in order.
  [[nodiscard]] std::vector<Chunk> pop_up_to(std::uint64_t max_bytes);
  /// Pops exactly `n` real bytes (fails if fewer real bytes buffered or a
  /// virtual chunk intervenes); used by text protocol parsers.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void clear();

 private:
  std::vector<Chunk> chunks_;  // front at index head_
  std::size_t head_{0};
  std::uint64_t size_{0};
};

// --- L4 bodies ---------------------------------------------------------

inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

inline constexpr std::uint64_t kIpv4HeaderBytes = 20;
inline constexpr std::uint64_t kUdpHeaderBytes = 8;
inline constexpr std::uint64_t kTcpHeaderBytes = 20;
inline constexpr std::uint64_t kIcmpHeaderBytes = 8;
inline constexpr std::uint64_t kEthernetHeaderBytes = 14;
inline constexpr std::uint64_t kArpBodyBytes = 28;

struct IcmpMessage {
  static constexpr std::uint8_t kEchoRequest = 8;
  static constexpr std::uint8_t kEchoReply = 0;

  std::uint8_t type{kEchoRequest};
  std::uint8_t code{0};
  std::uint16_t id{0};
  std::uint16_t seq{0};
  Chunk payload;

  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    return kIcmpHeaderBytes + payload.size();
  }
};

struct EthernetFrame;

/// Tunnel encapsulation: an Ethernet frame of the virtual plane riding in
/// a UDP datagram of the physical plane (WAVNet direct tunnels and the
/// IPOP overlay both use this, with different header overheads and, for
/// IPOP, overlay routing metadata).
struct EncapFrame {
  std::uint32_t header_bytes{0};  // encapsulation overhead on the wire
  // P2P node ids: IPOP overlay routing, and WAVNet relayed tunnels use
  // the same fields as the (src, dst) pair addressing a relay channel.
  std::uint64_t overlay_src{0};
  std::uint64_t overlay_dst{0};
  std::uint8_t hop_count{0};                // hops taken so far in overlay routing
  // Private-group isolation tag (vpg::GroupId; 0 = flat LAN). The sender
  // bills its 4 wire bytes into header_bytes when tagging, so wire_size
  // stays a pure function of header_bytes + frame.
  std::uint32_t group{0};
  std::shared_ptr<const EthernetFrame> frame;

  [[nodiscard]] std::uint64_t wire_size() const noexcept;
};

struct UdpDatagram {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::variant<Chunk, EncapFrame> payload;

  [[nodiscard]] std::uint64_t payload_size() const noexcept;
  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    return kUdpHeaderBytes + payload_size();
  }
  [[nodiscard]] const Chunk* chunk() const noexcept {
    return std::get_if<Chunk>(&payload);
  }
  [[nodiscard]] const EncapFrame* encap() const noexcept {
    return std::get_if<EncapFrame>(&payload);
  }
};

struct TcpFlags {
  bool syn{false};
  bool ack{false};
  bool fin{false};
  bool rst{false};
  bool psh{false};

  [[nodiscard]] std::uint8_t to_byte() const noexcept {
    return static_cast<std::uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) | (rst ? 0x04 : 0) |
                                     (psh ? 0x08 : 0) | (ack ? 0x10 : 0));
  }
  [[nodiscard]] static TcpFlags from_byte(std::uint8_t b) noexcept {
    return TcpFlags{(b & 0x02) != 0, (b & 0x10) != 0, (b & 0x01) != 0, (b & 0x04) != 0,
                    (b & 0x08) != 0};
  }
};

struct TcpSegment {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  TcpFlags flags;
  std::uint32_t window{65535};
  std::vector<Chunk> data;

  [[nodiscard]] std::uint64_t data_size() const noexcept { return total_size(data); }
  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    return kTcpHeaderBytes + data_size();
  }
};

/// A physical- or virtual-plane IPv4 packet.
struct IpPacket {
  Ipv4Address src{};
  Ipv4Address dst{};
  std::uint8_t ttl{64};
  std::variant<UdpDatagram, TcpSegment, IcmpMessage> body;

  [[nodiscard]] std::uint8_t protocol() const noexcept {
    switch (body.index()) {
      case 0: return kProtoUdp;
      case 1: return kProtoTcp;
      default: return kProtoIcmp;
    }
  }
  [[nodiscard]] std::uint64_t wire_size() const noexcept;

  [[nodiscard]] UdpDatagram* udp() noexcept { return std::get_if<UdpDatagram>(&body); }
  [[nodiscard]] const UdpDatagram* udp() const noexcept {
    return std::get_if<UdpDatagram>(&body);
  }
  [[nodiscard]] TcpSegment* tcp() noexcept { return std::get_if<TcpSegment>(&body); }
  [[nodiscard]] const TcpSegment* tcp() const noexcept {
    return std::get_if<TcpSegment>(&body);
  }
  [[nodiscard]] IcmpMessage* icmp() noexcept { return std::get_if<IcmpMessage>(&body); }
  [[nodiscard]] const IcmpMessage* icmp() const noexcept {
    return std::get_if<IcmpMessage>(&body);
  }
};

// --- L2 (virtual plane) -------------------------------------------------

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

struct ArpMessage {
  static constexpr std::uint16_t kRequest = 1;
  static constexpr std::uint16_t kReply = 2;

  std::uint16_t op{kRequest};
  MacAddress sender_mac{};
  Ipv4Address sender_ip{};
  MacAddress target_mac{};
  Ipv4Address target_ip{};

  /// Gratuitous ARP announces (sender == target IP); the VM migration
  /// path floods one of these after resume.
  [[nodiscard]] bool is_gratuitous() const noexcept { return sender_ip == target_ip; }
  [[nodiscard]] std::uint64_t wire_size() const noexcept { return kArpBodyBytes; }
};

/// Flow-tracing stamp (obs/flow.hpp) carried by every Ethernet frame of
/// the virtual plane. `id` is the deterministic sampled-flow hash (0 =
/// unsampled — every recording call site early-outs on it), `passage`
/// numbers the frame within its flow, and `budget` caps how many hop
/// records this passage may add to the flow's ring. The stamp is
/// simulation metadata, not wire bytes: wire_size() is unaffected.
struct FlowContext {
  std::uint64_t id{0};
  std::uint32_t passage{0};
  std::uint8_t budget{0};
};

struct EthernetFrame {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ethertype{kEtherTypeIpv4};
  FlowContext flow{};
  std::variant<std::shared_ptr<const IpPacket>, ArpMessage, Chunk> payload;

  [[nodiscard]] std::uint64_t payload_size() const noexcept;
  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    return kEthernetHeaderBytes + payload_size();
  }
  [[nodiscard]] const IpPacket* ip() const noexcept {
    const auto* p = std::get_if<std::shared_ptr<const IpPacket>>(&payload);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const ArpMessage* arp() const noexcept {
    return std::get_if<ArpMessage>(&payload);
  }

  [[nodiscard]] static EthernetFrame make_ip(MacAddress dst, MacAddress src, IpPacket pkt);
  [[nodiscard]] static EthernetFrame make_arp(MacAddress dst, MacAddress src, ArpMessage arp);
};

}  // namespace wav::net
