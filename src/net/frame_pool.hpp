// Pooled frame-buffer arena for the tunnel data path.
//
// Every frame a WAV-Switch tunnels (and every frame an IPOP router
// relays) needs a refcounted, immutable EthernetFrame that survives the
// Packet Assembler's processing delay and the WAN transit. Allocating a
// fresh shared_ptr control block per frame puts one malloc/free pair on
// the per-frame hot path; the pool recycles those blocks through a free
// list instead, so the steady-state frame path allocates nothing.
//
// Frames come out as plain std::shared_ptr<const EthernetFrame>, so the
// rest of the codebase (EncapFrame, the UDP stack, IPOP) is unchanged.
// The recycled block is released back to the pool when the last reference
// drops; the pool core is kept alive by the outstanding references, so
// frames may safely outlive the pool object itself.
//
// Pools are not thread-safe. FramePool::local() hands each thread its
// own pool, which matches the simulator's execution model: a Simulation
// runs on one thread, and frames never cross simulations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace wav::net {

class FramePool {
 public:
  using FrameRef = std::shared_ptr<const EthernetFrame>;

  FramePool() : core_(std::make_shared<Core>()) {}

  /// Copies `frame` into a pooled refcounted buffer. For IP frames this
  /// is cheap (the payload is itself a shared_ptr); for ARP/raw frames it
  /// copies the small body.
  [[nodiscard]] FrameRef acquire(const EthernetFrame& frame) {
    ++core_->acquired;
    return std::allocate_shared<EthernetFrame>(Recycler<EthernetFrame>{core_}, frame);
  }

  /// Moves `frame` into a pooled refcounted buffer.
  [[nodiscard]] FrameRef acquire(EthernetFrame&& frame) {
    ++core_->acquired;
    return std::allocate_shared<EthernetFrame>(Recycler<EthernetFrame>{core_},
                                               std::move(frame));
  }

  /// The calling thread's pool (one per thread; see file comment).
  [[nodiscard]] static FramePool& local() {
    thread_local FramePool pool;
    return pool;
  }

  [[nodiscard]] std::uint64_t frames_acquired() const noexcept { return core_->acquired; }
  [[nodiscard]] std::uint64_t blocks_allocated() const noexcept { return core_->allocated; }
  [[nodiscard]] std::uint64_t blocks_reused() const noexcept { return core_->reused; }
  [[nodiscard]] std::size_t free_blocks() const noexcept { return core_->free.size(); }

 private:
  /// Free list of raw blocks of the one size allocate_shared asks for
  /// (control block + frame, a single combined allocation). Owned by
  /// shared_ptr so in-flight frames keep it alive past pool destruction.
  struct Core {
    std::vector<void*> free;
    std::size_t block_size{0};
    std::uint64_t acquired{0};
    std::uint64_t allocated{0};
    std::uint64_t reused{0};

    ~Core() {
      for (void* p : free) ::operator delete(p);
    }

    [[nodiscard]] void* take(std::size_t bytes) {
      if (block_size == 0) block_size = bytes;
      if (bytes == block_size && !free.empty()) {
        void* p = free.back();
        free.pop_back();
        ++reused;
        return p;
      }
      ++allocated;
      return ::operator new(bytes);
    }

    void give(void* p, std::size_t bytes) {
      // Bound the free list so a burst does not pin memory forever.
      if (bytes == block_size && free.size() < kMaxFreeBlocks) {
        free.push_back(p);
        return;
      }
      ::operator delete(p);
    }
  };

  static constexpr std::size_t kMaxFreeBlocks = 8192;

  /// Minimal allocator handed to allocate_shared. Only one rebound type
  /// is ever materialized per pool, so Core sees a single block size.
  template <class T>
  struct Recycler {
    using value_type = T;

    std::shared_ptr<Core> core;

    explicit Recycler(std::shared_ptr<Core> c) noexcept : core(std::move(c)) {}
    template <class U>
    // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind
    Recycler(const Recycler<U>& other) noexcept : core(other.core) {}

    [[nodiscard]] T* allocate(std::size_t n) {
      return static_cast<T*>(core->take(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
      core->give(p, n * sizeof(T));
    }

    template <class U>
    [[nodiscard]] bool operator==(const Recycler<U>& other) const noexcept {
      return core == other.core;
    }
  };

  std::shared_ptr<Core> core_;
};

}  // namespace wav::net
