#include "net/framing.hpp"

#include <cassert>

namespace wav::net {

std::vector<Chunk> frame_message(FrameHeader header, Chunk payload) {
  header.length = payload.size();
  ByteBuffer hdr;
  ByteWriter w{hdr};
  w.u8(header.type);
  w.u32(header.tag);
  w.u64(header.length);
  std::vector<Chunk> out;
  out.push_back(Chunk::from_bytes(std::move(hdr)));
  if (!payload.empty()) out.push_back(std::move(payload));
  return out;
}

void MessageFramer::push(const std::vector<Chunk>& chunks) {
  for (const auto& c : chunks) buffer_.push(c);
  drain();
}

void MessageFramer::drain() {
  for (;;) {
    if (!current_) {
      if (buffer_.size() < kFrameHeaderBytes) return;
      ByteBuffer header_bytes;
      header_bytes.reserve(kFrameHeaderBytes);
      for (auto& piece : buffer_.pop_up_to(kFrameHeaderBytes)) {
        // Protocol invariant: headers are always sent as real bytes.
        assert(!piece.is_virtual() && "frame header must be real bytes");
        header_bytes.insert(header_bytes.end(), piece.real.begin(), piece.real.end());
      }
      ByteReader r{header_bytes};
      FrameHeader header;
      header.type = r.u8().value();
      header.tag = r.u32().value();
      header.length = r.u64().value();
      current_ = header;
      payload_.clear();
      payload_received_ = 0;
    }
    if (payload_received_ < current_->length) {
      auto got = buffer_.pop_up_to(current_->length - payload_received_);
      if (got.empty()) return;
      payload_received_ += total_size(got);
      for (auto& piece : got) payload_.push_back(std::move(piece));
      if (payload_received_ < current_->length) return;
    }
    const FrameHeader header = *current_;
    current_.reset();
    ++parsed_;
    handler_(header, std::move(payload_));
    payload_.clear();
  }
}

}  // namespace wav::net
