// Real on-wire codecs for the protocol headers modeled in packet.hpp.
//
// The simulator carries structured packets between nodes for speed, but
// the formats are not hand-waved: every header has an exact big-endian
// byte layout here, exercised by the codec unit tests and by the WAVNet
// tunnel path (which serializes whole Ethernet frames when payloads are
// real bytes). IPv4 and ICMP checksums follow RFC 1071.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "net/packet.hpp"

namespace wav::net {

/// Fixed header fields parsed from an IPv4 header (no options).
struct Ipv4HeaderFields {
  std::uint8_t ttl{0};
  std::uint8_t protocol{0};
  std::uint16_t total_length{0};
  std::uint16_t identification{0};
  Ipv4Address src{};
  Ipv4Address dst{};
  bool checksum_ok{false};
};

/// Appends a 20-byte IPv4 header (version 4, IHL 5, DF set, checksum
/// computed over the header).
void encode_ipv4_header(ByteBuffer& out, Ipv4Address src, Ipv4Address dst,
                        std::uint8_t protocol, std::uint8_t ttl, std::uint16_t total_length,
                        std::uint16_t identification = 0);
[[nodiscard]] std::optional<Ipv4HeaderFields> parse_ipv4_header(ByteReader& in);

void encode_udp_header(ByteBuffer& out, std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint16_t length);
struct UdpHeaderFields {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint16_t length{0};
};
[[nodiscard]] std::optional<UdpHeaderFields> parse_udp_header(ByteReader& in);

void encode_tcp_header(ByteBuffer& out, const TcpSegment& seg);
struct TcpHeaderFields {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  TcpFlags flags;
  std::uint16_t window{0};
};
[[nodiscard]] std::optional<TcpHeaderFields> parse_tcp_header(ByteReader& in);

/// Encodes an ICMP echo message; payload must be real bytes (callers
/// serialize virtual payloads by size accounting only).
void encode_icmp(ByteBuffer& out, const IcmpMessage& msg);
[[nodiscard]] std::optional<IcmpMessage> parse_icmp(ByteReader& in, std::size_t body_length);

void encode_arp(ByteBuffer& out, const ArpMessage& arp);
[[nodiscard]] std::optional<ArpMessage> parse_arp(ByteReader& in);

void encode_ethernet_header(ByteBuffer& out, const EthernetFrame& frame);
struct EthernetHeaderFields {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ethertype{0};
};
[[nodiscard]] std::optional<EthernetHeaderFields> parse_ethernet_header(ByteReader& in);

/// Serializes an entire frame when all nested payloads are real bytes;
/// returns nullopt if any virtual chunk is present (virtual payloads only
/// exist inside the simulator, never on a byte wire).
[[nodiscard]] std::optional<ByteBuffer> serialize_frame(const EthernetFrame& frame);

/// Parses a byte buffer produced by serialize_frame back into a
/// structured frame (IP/ARP payloads re-nested).
[[nodiscard]] std::optional<EthernetFrame> parse_frame(std::span<const std::byte> wire);

}  // namespace wav::net
