#include "net/codec.hpp"

#include <cstring>

namespace wav::net {
namespace {

void encode_mac(ByteWriter& w, const MacAddress& m) {
  for (const auto o : m.octets) w.u8(o);
}

std::optional<MacAddress> parse_mac(ByteReader& r) {
  MacAddress m;
  for (auto& o : m.octets) {
    const auto b = r.u8();
    if (!b) return std::nullopt;
    o = *b;
  }
  return m;
}

}  // namespace

void encode_ipv4_header(ByteBuffer& out, Ipv4Address src, Ipv4Address dst,
                        std::uint8_t protocol, std::uint8_t ttl, std::uint16_t total_length,
                        std::uint16_t identification) {
  const std::size_t start = out.size();
  ByteWriter w{out};
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0x00);  // DSCP/ECN
  w.u16(total_length);
  w.u16(identification);
  w.u16(0x4000);  // flags: DF, fragment offset 0
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.u32(src.value);
  w.u32(dst.value);
  const std::uint16_t csum =
      internet_checksum(std::span<const std::byte>{out.data() + start, 20});
  out[start + 10] = static_cast<std::byte>(csum >> 8);
  out[start + 11] = static_cast<std::byte>(csum & 0xFF);
}

std::optional<Ipv4HeaderFields> parse_ipv4_header(ByteReader& in) {
  const auto header = in.raw(20);
  if (!header) return std::nullopt;
  ByteReader r{*header};
  const auto ver_ihl = r.u8();
  if (!ver_ihl || *ver_ihl != 0x45) return std::nullopt;
  (void)r.u8();  // DSCP/ECN
  Ipv4HeaderFields f;
  f.total_length = *r.u16();
  f.identification = *r.u16();
  (void)r.u16();  // flags/fragment
  f.ttl = *r.u8();
  f.protocol = *r.u8();
  (void)r.u16();  // checksum field (included in verification below)
  f.src = Ipv4Address{*r.u32()};
  f.dst = Ipv4Address{*r.u32()};
  f.checksum_ok = internet_checksum(*header) == 0;
  return f;
}

void encode_udp_header(ByteBuffer& out, std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint16_t length) {
  ByteWriter w{out};
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional in IPv4 UDP; zero = not computed
}

std::optional<UdpHeaderFields> parse_udp_header(ByteReader& in) {
  const auto sp = in.u16();
  const auto dp = in.u16();
  const auto len = in.u16();
  const auto csum = in.u16();
  if (!sp || !dp || !len || !csum) return std::nullopt;
  return UdpHeaderFields{*sp, *dp, *len};
}

void encode_tcp_header(ByteBuffer& out, const TcpSegment& seg) {
  ByteWriter w{out};
  w.u16(seg.src_port);
  w.u16(seg.dst_port);
  w.u32(seg.seq);
  w.u32(seg.ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(seg.flags.to_byte());
  w.u16(static_cast<std::uint16_t>(std::min<std::uint32_t>(seg.window, 0xFFFF)));
  w.u16(0);  // checksum (not computed in the simulator wire format)
  w.u16(0);  // urgent pointer
}

std::optional<TcpHeaderFields> parse_tcp_header(ByteReader& in) {
  const auto header = in.raw(20);
  if (!header) return std::nullopt;
  ByteReader r{*header};
  TcpHeaderFields f;
  f.src_port = *r.u16();
  f.dst_port = *r.u16();
  f.seq = *r.u32();
  f.ack = *r.u32();
  const auto offset = r.u8();
  if (!offset || (*offset >> 4) != 5) return std::nullopt;
  f.flags = TcpFlags::from_byte(*r.u8());
  f.window = *r.u16();
  return f;
}

void encode_icmp(ByteBuffer& out, const IcmpMessage& msg) {
  const std::size_t start = out.size();
  ByteWriter w{out};
  w.u8(msg.type);
  w.u8(msg.code);
  w.u16(0);  // checksum placeholder
  w.u16(msg.id);
  w.u16(msg.seq);
  w.raw(msg.payload.real);
  const std::uint16_t csum = internet_checksum(
      std::span<const std::byte>{out.data() + start, out.size() - start});
  out[start + 2] = static_cast<std::byte>(csum >> 8);
  out[start + 3] = static_cast<std::byte>(csum & 0xFF);
}

std::optional<IcmpMessage> parse_icmp(ByteReader& in, std::size_t body_length) {
  if (body_length < kIcmpHeaderBytes) return std::nullopt;
  const auto body = in.raw(body_length);
  if (!body) return std::nullopt;
  if (internet_checksum(*body) != 0) return std::nullopt;
  ByteReader r{*body};
  IcmpMessage m;
  m.type = *r.u8();
  m.code = *r.u8();
  (void)r.u16();  // checksum
  m.id = *r.u16();
  m.seq = *r.u16();
  const auto rest = r.rest();
  m.payload = Chunk::from_bytes(ByteBuffer{rest.begin(), rest.end()});
  return m;
}

void encode_arp(ByteBuffer& out, const ArpMessage& arp) {
  ByteWriter w{out};
  w.u16(1);       // hardware type: Ethernet
  w.u16(kEtherTypeIpv4);
  w.u8(6);        // hardware address length
  w.u8(4);        // protocol address length
  w.u16(arp.op);
  encode_mac(w, arp.sender_mac);
  w.u32(arp.sender_ip.value);
  encode_mac(w, arp.target_mac);
  w.u32(arp.target_ip.value);
}

std::optional<ArpMessage> parse_arp(ByteReader& in) {
  const auto htype = in.u16();
  const auto ptype = in.u16();
  const auto hlen = in.u8();
  const auto plen = in.u8();
  if (!htype || !ptype || !hlen || !plen) return std::nullopt;
  if (*htype != 1 || *ptype != kEtherTypeIpv4 || *hlen != 6 || *plen != 4) {
    return std::nullopt;
  }
  ArpMessage m;
  const auto op = in.u16();
  if (!op) return std::nullopt;
  m.op = *op;
  const auto smac = parse_mac(in);
  const auto sip = in.u32();
  const auto tmac = parse_mac(in);
  const auto tip = in.u32();
  if (!smac || !sip || !tmac || !tip) return std::nullopt;
  m.sender_mac = *smac;
  m.sender_ip = Ipv4Address{*sip};
  m.target_mac = *tmac;
  m.target_ip = Ipv4Address{*tip};
  return m;
}

void encode_ethernet_header(ByteBuffer& out, const EthernetFrame& frame) {
  ByteWriter w{out};
  encode_mac(w, frame.dst);
  encode_mac(w, frame.src);
  w.u16(frame.ethertype);
}

std::optional<EthernetHeaderFields> parse_ethernet_header(ByteReader& in) {
  EthernetHeaderFields f;
  const auto dst = parse_mac(in);
  const auto src = parse_mac(in);
  const auto et = in.u16();
  if (!dst || !src || !et) return std::nullopt;
  f.dst = *dst;
  f.src = *src;
  f.ethertype = *et;
  return f;
}

namespace {

bool serialize_l4(ByteBuffer& out, const IpPacket& pkt) {
  if (const auto* udp = pkt.udp()) {
    const auto* chunk = udp->chunk();
    if (chunk == nullptr || chunk->is_virtual()) return false;  // nested encap not byte-serializable
    encode_udp_header(out, udp->src_port, udp->dst_port,
                      static_cast<std::uint16_t>(udp->wire_size()));
    ByteWriter{out}.raw(chunk->real);
    return true;
  }
  if (const auto* tcp = pkt.tcp()) {
    encode_tcp_header(out, *tcp);
    for (const auto& c : tcp->data) {
      if (c.is_virtual()) return false;
      ByteWriter{out}.raw(c.real);
    }
    return true;
  }
  const auto* icmp = pkt.icmp();
  if (icmp->payload.is_virtual()) return false;
  encode_icmp(out, *icmp);
  return true;
}

std::optional<IpPacket> parse_ip_packet(ByteReader& r) {
  const auto hdr = parse_ipv4_header(r);
  if (!hdr || !hdr->checksum_ok) return std::nullopt;
  if (hdr->total_length < kIpv4HeaderBytes) return std::nullopt;
  const std::size_t body_len = hdr->total_length - kIpv4HeaderBytes;
  IpPacket pkt;
  pkt.src = hdr->src;
  pkt.dst = hdr->dst;
  pkt.ttl = hdr->ttl;
  switch (hdr->protocol) {
    case kProtoUdp: {
      const auto uh = parse_udp_header(r);
      if (!uh || uh->length < kUdpHeaderBytes) return std::nullopt;
      const auto data = r.raw(uh->length - kUdpHeaderBytes);
      if (!data) return std::nullopt;
      UdpDatagram d;
      d.src_port = uh->src_port;
      d.dst_port = uh->dst_port;
      d.payload = Chunk::from_bytes(ByteBuffer{data->begin(), data->end()});
      pkt.body = std::move(d);
      return pkt;
    }
    case kProtoTcp: {
      const auto th = parse_tcp_header(r);
      if (!th || body_len < kTcpHeaderBytes) return std::nullopt;
      const auto data = r.raw(body_len - kTcpHeaderBytes);
      if (!data) return std::nullopt;
      TcpSegment s;
      s.src_port = th->src_port;
      s.dst_port = th->dst_port;
      s.seq = th->seq;
      s.ack = th->ack;
      s.flags = th->flags;
      s.window = th->window;
      if (!data->empty()) {
        s.data.push_back(Chunk::from_bytes(ByteBuffer{data->begin(), data->end()}));
      }
      pkt.body = std::move(s);
      return pkt;
    }
    case kProtoIcmp: {
      auto m = parse_icmp(r, body_len);
      if (!m) return std::nullopt;
      pkt.body = std::move(*m);
      return pkt;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<ByteBuffer> serialize_frame(const EthernetFrame& frame) {
  ByteBuffer out;
  encode_ethernet_header(out, frame);
  if (const auto* arp = frame.arp()) {
    encode_arp(out, *arp);
    return out;
  }
  if (const auto* ip = frame.ip()) {
    encode_ipv4_header(out, ip->src, ip->dst, ip->protocol(), ip->ttl,
                       static_cast<std::uint16_t>(ip->wire_size()));
    if (!serialize_l4(out, *ip)) return std::nullopt;
    return out;
  }
  const auto& raw = std::get<Chunk>(frame.payload);
  if (raw.is_virtual()) return std::nullopt;
  ByteWriter{out}.raw(raw.real);
  return out;
}

std::optional<EthernetFrame> parse_frame(std::span<const std::byte> wire) {
  ByteReader r{wire};
  const auto hdr = parse_ethernet_header(r);
  if (!hdr) return std::nullopt;
  EthernetFrame f;
  f.dst = hdr->dst;
  f.src = hdr->src;
  f.ethertype = hdr->ethertype;
  if (hdr->ethertype == kEtherTypeArp) {
    const auto arp = parse_arp(r);
    if (!arp) return std::nullopt;
    f.payload = *arp;
    return f;
  }
  if (hdr->ethertype == kEtherTypeIpv4) {
    auto ip = parse_ip_packet(r);
    if (!ip) return std::nullopt;
    f.payload = std::make_shared<const IpPacket>(std::move(*ip));
    return f;
  }
  const auto rest = r.rest();
  f.payload = Chunk::from_bytes(ByteBuffer{rest.begin(), rest.end()});
  return f;
}

}  // namespace wav::net
