// Message framing over a TCP byte stream: a 13-byte real header
// (type u8 | tag u32 | length u64) followed by `length` payload bytes
// that may be virtual (bulk) or real (small control content). Used by
// the VM migration protocol and the mini-MPI runtime.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "net/packet.hpp"

namespace wav::net {

struct FrameHeader {
  std::uint8_t type{0};
  std::uint32_t tag{0};
  std::uint64_t length{0};
};

inline constexpr std::uint64_t kFrameHeaderBytes = 13;

/// Builds the chunks for one framed message (header + payload).
[[nodiscard]] std::vector<Chunk> frame_message(FrameHeader header, Chunk payload);

/// Incremental parser: feed received chunks in order; emits one callback
/// per completed message with the payload chunks (boundaries preserved as
/// received).
class MessageFramer {
 public:
  using Handler = std::function<void(const FrameHeader&, std::vector<Chunk> payload)>;

  explicit MessageFramer(Handler handler) : handler_(std::move(handler)) {}

  void push(const std::vector<Chunk>& chunks);

  [[nodiscard]] std::uint64_t messages_parsed() const noexcept { return parsed_; }

 private:
  void drain();

  Handler handler_;
  ChunkQueue buffer_;
  std::optional<FrameHeader> current_;
  std::vector<Chunk> payload_;
  std::uint64_t payload_received_{0};
  std::uint64_t parsed_{0};
};

}  // namespace wav::net
