#include "net/packet.hpp"

#include <cassert>

namespace wav::net {

Chunk Chunk::split_front(std::uint64_t n) {
  assert(n <= size());
  Chunk front;
  if (!real.empty()) {
    const auto take = static_cast<std::size_t>(std::min<std::uint64_t>(n, real.size()));
    front.real.assign(real.begin(), real.begin() + static_cast<std::ptrdiff_t>(take));
    real.erase(real.begin(), real.begin() + static_cast<std::ptrdiff_t>(take));
    n -= take;
  }
  if (n > 0) {
    front.virtual_size = n;
    virtual_size -= n;
  }
  return front;
}

std::uint64_t total_size(const std::vector<Chunk>& chunks) noexcept {
  std::uint64_t total = 0;
  for (const auto& c : chunks) total += c.size();
  return total;
}

void ChunkQueue::push(Chunk c) {
  if (c.empty()) return;
  size_ += c.size();
  chunks_.push_back(std::move(c));
}

std::vector<Chunk> ChunkQueue::pop_up_to(std::uint64_t max_bytes) {
  std::vector<Chunk> out;
  while (max_bytes > 0 && head_ < chunks_.size()) {
    Chunk& front = chunks_[head_];
    if (front.size() <= max_bytes) {
      max_bytes -= front.size();
      size_ -= front.size();
      out.push_back(std::move(front));
      ++head_;
    } else {
      Chunk piece = front.split_front(max_bytes);
      size_ -= piece.size();
      out.push_back(std::move(piece));
      max_bytes = 0;
    }
  }
  // Compact once the dead prefix dominates.
  if (head_ > 64 && head_ * 2 > chunks_.size()) {
    chunks_.erase(chunks_.begin(), chunks_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return out;
}

void ChunkQueue::clear() {
  chunks_.clear();
  head_ = 0;
  size_ = 0;
}

std::uint64_t EncapFrame::wire_size() const noexcept {
  return header_bytes + (frame ? frame->wire_size() : 0);
}

std::uint64_t UdpDatagram::payload_size() const noexcept {
  if (const auto* c = chunk()) return c->size();
  return encap()->wire_size();
}

std::uint64_t IpPacket::wire_size() const noexcept {
  std::uint64_t body_size = 0;
  std::visit([&](const auto& b) { body_size = b.wire_size(); }, body);
  return kIpv4HeaderBytes + body_size;
}

std::uint64_t EthernetFrame::payload_size() const noexcept {
  if (const auto* p = std::get_if<std::shared_ptr<const IpPacket>>(&payload)) {
    return *p ? (*p)->wire_size() : 0;
  }
  if (const auto* a = std::get_if<ArpMessage>(&payload)) return a->wire_size();
  return std::get<Chunk>(payload).size();
}

EthernetFrame EthernetFrame::make_ip(MacAddress dst, MacAddress src, IpPacket pkt) {
  EthernetFrame f;
  f.dst = dst;
  f.src = src;
  f.ethertype = kEtherTypeIpv4;
  f.payload = std::make_shared<const IpPacket>(std::move(pkt));
  return f;
}

EthernetFrame EthernetFrame::make_arp(MacAddress dst, MacAddress src, ArpMessage arp) {
  EthernetFrame f;
  f.dst = dst;
  f.src = src;
  f.ethertype = kEtherTypeArp;
  f.payload = arp;
  return f;
}

}  // namespace wav::net
