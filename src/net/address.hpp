// Network address types: 48-bit MAC, IPv4 address/subnet, and transport
// endpoints. Used by both the physical underlay fabric and the WAVNet
// virtual link layer.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace wav::net {

struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  constexpr auto operator<=>(const MacAddress&) const = default;

  [[nodiscard]] constexpr bool is_broadcast() const {
    for (const auto o : octets) {
      if (o != 0xFF) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool is_multicast() const { return (octets[0] & 0x01) != 0; }
  [[nodiscard]] constexpr bool is_zero() const {
    for (const auto o : octets) {
      if (o != 0) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr std::uint64_t as_u64() const {
    std::uint64_t v = 0;
    for (const auto o : octets) v = (v << 8) | o;
    return v;
  }

  [[nodiscard]] static constexpr MacAddress from_u64(std::uint64_t v) {
    MacAddress m;
    for (int i = 5; i >= 0; --i) {
      m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xFF);
      v >>= 8;
    }
    return m;
  }

  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view s);
};

struct Ipv4Address {
  std::uint32_t value{0};  // host-order; 10.1.2.3 -> 0x0A010203

  constexpr auto operator<=>(const Ipv4Address&) const = default;

  [[nodiscard]] constexpr bool is_zero() const { return value == 0; }
  [[nodiscard]] constexpr bool is_broadcast() const { return value == 0xFFFFFFFF; }
  /// RFC 1918 private ranges — what a host "behind NAT" carries.
  [[nodiscard]] constexpr bool is_private() const {
    const std::uint32_t v = value;
    return (v >> 24) == 10 || (v >> 20) == 0xAC1 || (v >> 16) == 0xC0A8;
  }

  [[nodiscard]] static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                                         std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(static_cast<std::uint32_t>(a) << 24) |
                       (static_cast<std::uint32_t>(b) << 16) |
                       (static_cast<std::uint32_t>(c) << 8) | d};
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view s);
};

/// An IPv4 subnet in CIDR form, for routing decisions.
struct Ipv4Subnet {
  Ipv4Address network{};
  std::uint8_t prefix_len{0};

  constexpr auto operator<=>(const Ipv4Subnet&) const = default;

  [[nodiscard]] constexpr std::uint32_t mask() const {
    return prefix_len == 0 ? 0u : ~0u << (32 - prefix_len);
  }
  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value & mask()) == (network.value & mask());
  }
  [[nodiscard]] std::string to_string() const;
};

/// Transport endpoint: IPv4 address + UDP/TCP port.
struct Endpoint {
  Ipv4Address ip{};
  std::uint16_t port{0};

  constexpr auto operator<=>(const Endpoint&) const = default;

  [[nodiscard]] constexpr bool is_zero() const { return ip.is_zero() && port == 0; }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace wav::net

template <>
struct std::hash<wav::net::MacAddress> {
  std::size_t operator()(const wav::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.as_u64());
  }
};

template <>
struct std::hash<wav::net::Ipv4Address> {
  std::size_t operator()(const wav::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<wav::net::Endpoint> {
  std::size_t operator()(const wav::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.ip.value) << 16) | e.port);
  }
};
